//! Instantiating a concrete datacenter from a profile.

use harvest_sim::dist;
use harvest_sim::rng::indexed_rng;
use harvest_trace::datacenter::{DatacenterProfile, TenantSpec};
use harvest_trace::SAMPLES_PER_MONTH;

use crate::server::{RackId, Server, ServerId, Tenant, TenantId};

/// Servers per rack.
pub const RACK_SIZE: u32 = 20;

/// Default harvestable blocks per server (256 MB blocks; 2 400 ≈ 600 GB).
pub const DEFAULT_HARVEST_BLOCKS: u32 = 2_400;

/// A concrete datacenter: tenants with month-long utilization traces, and
/// the servers they own.
///
/// Server ids are contiguous per tenant and racks are filled in id order,
/// so a tenant's servers cluster into racks — the physical correlation
/// that makes rack-aware-but-tenant-oblivious placement (stock HDFS)
/// vulnerable to correlated reimages.
#[derive(Debug, Clone)]
pub struct Datacenter {
    /// Display name (e.g. `"DC-9"`).
    pub name: String,
    /// All primary tenants.
    pub tenants: Vec<Tenant>,
    /// All servers, indexed by [`ServerId`].
    pub servers: Vec<Server>,
}

impl Datacenter {
    /// Generates the datacenter described by `profile`, deterministically
    /// from `seed`.
    ///
    /// Each tenant gets one month of "average server" utilization trace;
    /// reimage *events* are not materialized here (the durability
    /// simulation generates however many months it needs from each
    /// tenant's [`harvest_trace::reimage::TenantReimageModel`]).
    pub fn generate(profile: &DatacenterProfile, seed: u64) -> Self {
        let specs = profile.sample_tenants(seed);
        Self::from_specs(profile.name(), &specs, seed)
    }

    /// Builds a datacenter from explicit tenant specs (used for the
    /// 102-server testbed of §6.1 and for tests).
    pub fn from_specs(name: String, specs: &[TenantSpec], seed: u64) -> Self {
        let mut tenants = Vec::with_capacity(specs.len());
        let mut servers = Vec::new();
        let mut next_server = 0u32;

        for (i, spec) in specs.iter().enumerate() {
            let tenant_id = TenantId(i as u32);
            let mut rng = indexed_rng(seed, "tenant-trace", i as u64);
            let trace = spec.util.generate(&mut rng, SAMPLES_PER_MONTH);

            let start = next_server;
            let mut storage_rng = indexed_rng(seed, "tenant-storage", i as u64);
            // The tenant declares how much spare space harvesting may use;
            // tenants differ (±50% around the default).
            let per_server_blocks = dist::uniform(
                &mut storage_rng,
                DEFAULT_HARVEST_BLOCKS as f64 * 0.5,
                DEFAULT_HARVEST_BLOCKS as f64 * 1.5,
            )
            .round() as u32;
            for _ in 0..spec.n_servers {
                let id = ServerId(next_server);
                servers.push(Server {
                    id,
                    tenant: tenant_id,
                    rack: RackId(next_server / RACK_SIZE),
                    harvest_blocks: per_server_blocks,
                });
                next_server += 1;
            }

            tenants.push(Tenant {
                id: tenant_id,
                name: spec.name.clone(),
                environment: spec.environment,
                pattern: spec.pattern(),
                trace,
                reimage: spec.reimage.clone(),
                server_range: start..next_server,
            });
        }

        Datacenter {
            name,
            tenants,
            servers,
        }
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of tenants.
    pub fn n_tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        match self.servers.last() {
            Some(s) => s.rack.0 as usize + 1,
            None => 0,
        }
    }

    /// The server with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn server(&self, id: ServerId) -> &Server {
        &self.servers[id.0 as usize]
    }

    /// The server-id range of one rack. Racks fill contiguously in id
    /// order ([`RACK_SIZE`] servers each, the last possibly partial),
    /// so the range is computable without scanning — fault injection
    /// expands rack-level events (power loss, uplink death) with this.
    pub fn servers_in_rack(&self, rack: u32) -> std::ops::Range<u32> {
        let lo = (rack * RACK_SIZE).min(self.servers.len() as u32);
        let hi = (lo + RACK_SIZE).min(self.servers.len() as u32);
        lo..hi
    }

    /// The tenant with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn tenant(&self, id: TenantId) -> &Tenant {
        &self.tenants[id.0 as usize]
    }

    /// The tenant that owns the given server.
    pub fn tenant_of(&self, server: ServerId) -> &Tenant {
        self.tenant(self.server(server).tenant)
    }

    /// Total harvestable blocks across all servers.
    pub fn total_harvest_blocks(&self) -> u64 {
        self.servers.iter().map(|s| s.harvest_blocks as u64).sum()
    }

    /// Fleet-average of the tenants' mean utilizations, weighted by
    /// tenant size.
    pub fn mean_utilization(&self) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0usize;
        for t in &self.tenants {
            weighted += t.trace.mean() * t.n_servers() as f64;
            total += t.n_servers();
        }
        if total == 0 {
            0.0
        } else {
            weighted / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn small_dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.03), 42)
    }

    #[test]
    fn generation_wires_ids_consistently() {
        let dc = small_dc();
        assert!(dc.n_tenants() >= 3);
        assert!(dc.n_servers() > 0);
        for (i, s) in dc.servers.iter().enumerate() {
            assert_eq!(s.id.0 as usize, i);
            assert!(dc.tenant(s.tenant).owns(s.id));
        }
        for (i, t) in dc.tenants.iter().enumerate() {
            assert_eq!(t.id.0 as usize, i);
            for sid in t.server_ids() {
                assert_eq!(dc.server(sid).tenant, t.id);
            }
        }
    }

    #[test]
    fn server_ranges_partition_the_fleet() {
        let dc = small_dc();
        let mut covered = 0u32;
        for t in &dc.tenants {
            assert_eq!(t.server_range.start, covered);
            covered = t.server_range.end;
        }
        assert_eq!(covered as usize, dc.n_servers());
    }

    #[test]
    fn traces_span_a_month() {
        let dc = small_dc();
        for t in &dc.tenants {
            assert_eq!(t.trace.len(), SAMPLES_PER_MONTH);
        }
    }

    #[test]
    fn servers_in_rack_matches_the_assignment() {
        let dc = small_dc();
        for rack in 0..dc.n_racks() as u32 {
            for sid in dc.servers_in_rack(rack) {
                assert_eq!(dc.server(ServerId(sid)).rack.0, rack);
            }
        }
        let total: usize = (0..dc.n_racks() as u32)
            .map(|r| dc.servers_in_rack(r).len())
            .sum();
        assert_eq!(total, dc.n_servers());
        // Out-of-range racks yield an empty range, not a panic.
        assert!(dc.servers_in_rack(10_000).is_empty());
    }

    #[test]
    fn racks_hold_up_to_rack_size() {
        let dc = small_dc();
        let mut per_rack = std::collections::HashMap::new();
        for s in &dc.servers {
            *per_rack.entry(s.rack).or_insert(0u32) += 1;
        }
        assert!(per_rack.values().all(|&c| c <= RACK_SIZE));
        assert_eq!(dc.n_racks(), per_rack.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_dc();
        let b = small_dc();
        assert_eq!(a.n_servers(), b.n_servers());
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.trace, tb.trace);
        }
    }

    #[test]
    fn testbed_build() {
        let specs = DatacenterProfile::testbed_dc9(42);
        let dc = Datacenter::from_specs("testbed".into(), &specs, 42);
        assert_eq!(dc.n_servers(), 102);
        assert_eq!(dc.n_tenants(), 21);
    }

    #[test]
    fn mean_utilization_is_sane() {
        let dc = small_dc();
        let m = dc.mean_utilization();
        assert!((0.05..0.8).contains(&m), "mean utilization {m}");
    }

    #[test]
    fn storage_is_positive_everywhere() {
        let dc = small_dc();
        assert!(dc.servers.iter().all(|s| s.harvest_blocks > 0));
        assert!(dc.total_harvest_blocks() > 0);
    }
}
