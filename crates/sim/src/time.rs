//! Simulated time with millisecond resolution.
//!
//! All simulations in the workspace use integer milliseconds internally so
//! that event ordering is exact (no floating-point comparison hazards) and
//! simulations replay identically for a given seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulated clock, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000)
    }

    /// Returns the instant as raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the instant as whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// millisecond and saturating below at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration(0);
        }
        SimDuration((secs * 1_000.0).round() as u64)
    }

    /// Returns the duration as raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest millisecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Integer division of two durations (how many `other` fit in `self`).
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(other.0 > 0, "division by zero-length duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000;
        let (d, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if d > 0 {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(5).as_millis(), 5_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_days(30).as_hours_f64(), 720.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t.as_secs(), 15);
        assert_eq!(t.since(SimTime::from_secs(12)).as_secs(), 3);
        // `since` saturates rather than underflowing.
        assert_eq!(t.since(SimTime::from_secs(100)), SimDuration::ZERO);
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(1.2345);
        assert_eq!(d.as_millis(), 1_235);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn mul_and_div() {
        let d = SimDuration::from_secs(100).mul_f64(0.5);
        assert_eq!(d.as_secs(), 50);
        assert_eq!(
            SimDuration::from_hours(2).div_duration(SimDuration::from_mins(30)),
            4
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3_661).to_string(), "01:01:01");
        assert_eq!(
            (SimTime::ZERO + SimDuration::from_days(2)).to_string(),
            "2d00:00:00"
        );
    }
}
