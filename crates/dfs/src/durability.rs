//! The durability simulation (Figure 15).
//!
//! Places a population of blocks, then replays months of per-server disk
//! reimages — independent reimages plus correlated redeployment sweeps —
//! repairing lost replicas through the throttled pipeline. A block whose
//! replicas are all destroyed before repair completes is lost forever.
//!
//! The paper simulates one year and 4 M blocks per datacenter; block
//! count scales with cluster size here (see
//! [`DurabilityConfig::fill_fraction`]), which preserves the per-server
//! replica density that determines loss dynamics.

use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet};

use harvest_cluster::{Datacenter, ServerId};
use harvest_disk::{DiskConfig, DiskPool, IoDir};
use harvest_net::{Fabric, NetworkConfig};
use harvest_sim::fault::{BackoffConfig, FaultKind, FaultPlan};
use harvest_sim::obs::{Recorder, StateTrackId, TrackId};
use harvest_sim::rng::stream_rng;
use harvest_sim::{SharingMode, SimDuration, SimTime};
use rand::RngExt;

use crate::placement::{PlacementPolicy, Placer};
use crate::repair::{QueuedRepair, RepairConfig, RepairPipeline, TransferParts};
use crate::store::{BlockId, BlockStore, BLOCK_BYTES};

/// Durability-simulation parameters.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Placement policy under test.
    pub policy: PlacementPolicy,
    /// Replicas per block (the paper evaluates 3 and 4).
    pub replication: usize,
    /// Fraction of the cluster's harvestable space to fill with blocks
    /// (replicas / capacity). The paper's 4 M blocks × 3 replicas lands
    /// around 50% of a production cluster's spare space.
    pub fill_fraction: f64,
    /// Simulated months (the paper uses 12).
    pub months: usize,
    /// Master seed.
    pub seed: u64,
    /// Repair timing.
    pub repair: RepairConfig,
    /// When set, each re-replication is a 256 MB flow through the shared
    /// fabric and the block stays vulnerable until the transfer's last
    /// byte lands — the repair window becomes throttle *plus* network.
    /// `None` reproduces the seed model (instant transfers).
    pub network: Option<NetworkConfig>,
    /// When set, each re-replication also reads the block off the
    /// surviving replica's disk and writes it to the destination's,
    /// fair-sharing both with every other repair on those disks; the
    /// block stays vulnerable until the slowest component finishes.
    /// Composes with [`DurabilityConfig::network`]; `None` keeps disks
    /// free and instant.
    pub disk: Option<DiskConfig>,
    /// Fair-sharing engine for the fabric and disk pool
    /// ([`SharingMode::Auto`] by default: analytic O(log n) on
    /// single-bottleneck components and channels, progressive filling
    /// elsewhere; results identical either way).
    pub sharing: SharingMode,
    /// Injected faults — crashes, rack power loss, uplink outages, disk
    /// failures and brown-outs — plus the retry/backoff knobs. A crash
    /// kills the server's in-flight repairs (they retry with
    /// exponential backoff against a fresh replica); after the
    /// heartbeat detection delay the server is declared dead and its
    /// replicas become re-replication work. [`FaultPlan::none`] keeps
    /// the simulation bitwise identical to a build without the fault
    /// machinery (pinned by oracle tests).
    pub faults: FaultPlan,
}

impl DurabilityConfig {
    /// The paper's one-year setup for a given policy and replication.
    pub fn paper(policy: PlacementPolicy, replication: usize, seed: u64) -> Self {
        DurabilityConfig {
            policy,
            replication,
            fill_fraction: 0.5,
            months: 12,
            seed,
            repair: RepairConfig::default(),
            network: None,
            disk: None,
            sharing: SharingMode::default(),
            faults: FaultPlan::none(),
        }
    }
}

/// Outcome of a durability simulation.
#[derive(Debug, Clone)]
pub struct DurabilityResult {
    /// Blocks created.
    pub n_blocks: u64,
    /// Blocks that lost every replica.
    pub lost_blocks: u64,
    /// Total server reimages replayed.
    pub reimages: u64,
    /// Replicas successfully re-created.
    pub repairs: u64,
    /// Repairs abandoned because the block was already lost.
    pub repairs_too_late: u64,
    /// Percentage of blocks lost (Figure 15's y-axis).
    pub lost_percent: f64,
    /// Fault events applied (a rack power loss counts once per server).
    pub faults_injected: u64,
    /// In-flight repairs torn down by a fault (crash, uplink death,
    /// disk failure) before their transfer finished.
    pub repairs_aborted: u64,
    /// Fault-aborted repairs re-queued with backoff.
    pub fault_retries: u64,
    /// Repairs abandoned after `max_retries` fault aborts — the
    /// permanent-loss accounting knob.
    pub retries_exhausted: u64,
    /// Repair slots shed (re-queued unstarted) because the in-flight
    /// population was above `shed_inflight_above` during a storm.
    pub repairs_shed: u64,
    /// Final fabric counters when the network was modeled.
    pub fabric: Option<harvest_net::FabricStats>,
    /// Final disk-pool counters when disks were modeled.
    pub disk: Option<harvest_disk::DiskStats>,
}

/// Runs the durability simulation.
pub fn simulate_durability(dc: &Datacenter, cfg: &DurabilityConfig) -> DurabilityResult {
    simulate_durability_inner(dc, cfg, Recorder::off()).0
}

/// Runs the durability simulation with observability: fault injections
/// land as `fault/*` instants on the `dfs/fault` track and every
/// fault-aborted repair walks the `failed` → `retrying` states on the
/// `dfs/repair` state track, so blame analysis can attribute failure
/// time. Recording never changes the simulated outcome.
pub fn simulate_durability_recorded(
    dc: &Datacenter,
    cfg: &DurabilityConfig,
    rec: Recorder,
) -> (DurabilityResult, Recorder) {
    simulate_durability_inner(dc, cfg, rec)
}

fn simulate_durability_inner(
    dc: &Datacenter,
    cfg: &DurabilityConfig,
    rec: Recorder,
) -> (DurabilityResult, Recorder) {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    assert!(
        (0.0..=0.95).contains(&cfg.fill_fraction),
        "fill fraction must be in [0, 0.95]"
    );
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "durability");

    // --- Phase 1: fill the store. ---
    let capacity = dc.total_harvest_blocks();
    let n_blocks = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let n_servers = dc.n_servers();
    let mut created = 0u64;
    for _ in 0..n_blocks {
        // Writers are uniform over servers, as block creators in the
        // batch workload are.
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, None) {
            Some(p) => {
                store.create_block(&p.servers);
                created += 1;
            }
            None => break,
        }
    }

    // --- Phase 2: generate the reimage schedule. ---
    let mut events: Vec<(SimTime, ServerId)> = Vec::new();
    for tenant in &dc.tenants {
        let mut trng = stream_rng(
            cfg.seed ^ (0xD15C_0000 + tenant.id.0 as u64),
            "tenant-reimages",
        );
        let (tenant_events, _) = tenant
            .reimage
            .generate(&mut trng, tenant.n_servers(), cfg.months);
        for e in tenant_events {
            let global = ServerId(tenant.server_range.start + e.server as u32);
            events.push((e.time, global));
        }
    }
    events.sort_by_key(|&(t, s)| (t, s));

    // --- Phase 3: replay reimages, repairing through the pipeline (and,
    // when configured, the network fabric and the shared disks). ---
    let mut pipeline = RepairPipeline::new(cfg.repair, n_servers);
    let mut heap: BinaryHeap<QueuedRepair> = BinaryHeap::new();
    let mut fabric = cfg.network.as_ref().map(|n| {
        let mut f = Fabric::from_datacenter(dc, n);
        f.set_sharing_mode(cfg.sharing);
        f
    });
    let mut disks = cfg.disk.as_ref().map(|d| {
        let mut p = DiskPool::from_datacenter(dc, d);
        p.set_sharing_mode(cfg.sharing);
        p
    });
    let modeled = fabric.is_some() || disks.is_some();
    // In-flight repairs by repair id: outstanding components (flow,
    // source read, destination write), the block, its destination, and
    // the latest component completion. `in_flight_blocks` counts
    // transfers per block so neither the follow-up queueing nor a
    // pending slot launches a phantom duplicate repair (which would
    // burn throttle slots and transfer bandwidth).
    let mut in_flight: HashMap<u64, InFlightRepair> = HashMap::new();
    let mut next_rid = 0u64;
    let mut in_flight_blocks: HashMap<u64, u32> = HashMap::new();
    // Repairs whose destination server was reimaged mid-transfer: the
    // half-written copy is gone, so the landing must fail and re-queue.
    let mut doomed: HashSet<u64> = HashSet::new();
    let mut repairs = 0u64;
    let mut too_late = 0u64;
    let reimage_count = events.len() as u64;

    // Fault machinery. An empty plan arms nothing: the action list is
    // empty, every `frt.armed` branch is skipped, and placement sees
    // the same `None` busy mask as before — the no-fault trajectory is
    // bitwise identical to a build without this code.
    let mut rec = rec;
    let obs = if rec.is_on() {
        Some(DurObs {
            track: rec.track("dfs/fault"),
            states: rec.state_track("dfs/repair"),
        })
    } else {
        None
    };
    let horizon = SimTime::ZERO + SimDuration::from_days(30 * cfg.months as u64);
    let fault_actions = if cfg.faults.is_none() {
        Vec::new()
    } else {
        expand_fault_plan(dc, &cfg.faults, cfg.repair.detection_delay, horizon)
    };
    let mut fault_idx = 0usize;
    let mut frt = FaultRt {
        armed: !cfg.faults.is_none(),
        max_retries: cfg.faults.max_retries,
        backoff: cfg.faults.backoff,
        shed_above: cfg.faults.shed_inflight_above,
        seed: cfg.seed,
        down: vec![false; n_servers],
        attempts: HashMap::new(),
        retrying: HashSet::new(),
        faults_injected: 0,
        repairs_aborted: 0,
        fault_retries: 0,
        retries_exhausted: 0,
        repairs_shed: 0,
        rec,
        obs,
    };

    // Merged event loop over five deterministic sources: fabric
    // completions, disk completions, repair-slot releases, reimages,
    // and injected faults, earliest first; ties resolve transfers <
    // repair < reimage < fault so a transfer that lands at the same
    // instant a server dies still counts.
    let mut events = events.into_iter().peekable();
    let mut end_time = SimTime::ZERO;
    loop {
        let t_net = fabric.as_ref().and_then(|f| f.next_event_time());
        let t_disk = disks.as_ref().and_then(|p| p.next_event_time());
        let t_rep = heap.peek().map(|r| r.at);
        let t_rei = events.peek().map(|&(t, _)| t);
        let t_fau = fault_actions.get(fault_idx).map(|&(t, _)| t);
        let Some(now) = [t_net, t_disk, t_rep, t_rei, t_fau]
            .into_iter()
            .flatten()
            .min()
        else {
            break;
        };
        end_time = now;

        if t_net.map(|t| t <= now).unwrap_or(false) || t_disk.map(|t| t <= now).unwrap_or(false) {
            let mut component_done = |rid: u64, at: SimTime| -> Option<(InFlightRepair, SimTime)> {
                let e = in_flight.get_mut(&rid).expect("repair was registered");
                let landed_at = e.xfer.component_done(at)?;
                Some((in_flight.remove(&rid).expect("present"), landed_at))
            };
            let mut landed: Vec<(u64, InFlightRepair, SimTime)> = Vec::new();
            if let Some(f) = fabric.as_mut() {
                for c in f.pump(now) {
                    if let Some((e, at)) = component_done(c.tag, c.at) {
                        landed.push((c.tag, e, at));
                    }
                }
            }
            if let Some(p) = disks.as_mut() {
                for c in p.pump(now) {
                    if let Some((e, at)) = component_done(c.tag, c.at) {
                        landed.push((c.tag, e, at));
                    }
                }
            }
            // Land complete repairs in completion order (both pumps run
            // to `now`, so a batch can hold out-of-order instants).
            landed.sort_by_key(|l| (l.2, l.0));
            for (rid, e, at) in landed {
                let dest_destroyed = doomed.remove(&rid);
                land_repair(
                    &mut store,
                    &mut in_flight_blocks,
                    e.block,
                    e.dest,
                    dest_destroyed,
                    cfg.replication,
                    &mut repairs,
                    &mut too_late,
                    &mut heap,
                    &mut pipeline,
                    &mut frt,
                    at,
                );
            }
            continue;
        }

        if t_rep.map(|t| t <= now).unwrap_or(false) {
            let r = heap.pop().expect("peeked");
            if frt.armed {
                // The backoff wait for this block ends when its slot
                // fires (the attempt below may re-enter `retrying`).
                if frt.retrying.remove(&r.block.0) {
                    if let Some(o) = frt.obs {
                        frt.rec.state_exit(o.states, r.block.0, r.at);
                    }
                }
                // Graceful degradation: under a storm, shed repair
                // slots rather than piling more transfers onto an
                // already-saturated fabric; the shed slot re-queues
                // through the throttle.
                if let Some(cap) = frt.shed_above {
                    if in_flight.len() >= cap {
                        frt.repairs_shed += 1;
                        let at = pipeline.schedule(r.at);
                        heap.push(QueuedRepair { at, block: r.block });
                        continue;
                    }
                }
                // Every surviving replica sits on a crashed-but-not-
                // yet-dead server: nothing to read from until one
                // restarts (or they are declared dead and the block
                // becomes lost). Retry with backoff.
                let existing = store.replicas(r.block);
                if !existing.is_empty() && existing.iter().all(|&s| frt.down[s as usize]) {
                    frt.retry_or_abandon(&mut heap, r.block, r.at);
                    continue;
                }
            }
            if modeled {
                start_repair_transfer(
                    dc,
                    &placer,
                    &mut store,
                    &mut rng,
                    &mut fabric,
                    &mut disks,
                    &mut in_flight,
                    &mut next_rid,
                    &mut in_flight_blocks,
                    r.block,
                    cfg.replication,
                    &mut too_late,
                    &mut heap,
                    &mut pipeline,
                    &mut frt,
                    r.at,
                );
            } else {
                apply_repair(
                    &placer,
                    &mut store,
                    &mut rng,
                    r.block,
                    cfg.replication,
                    &mut repairs,
                    &mut too_late,
                    &mut heap,
                    &mut pipeline,
                    &mut frt,
                    r.at,
                );
            }
            continue;
        }

        if t_rei.map(|t| t <= now).unwrap_or(false) {
            let (now, server) = events.next().expect("peeked");
            // The reimage also wipes any half-written repair copies
            // inbound to this server.
            doomed.extend(
                in_flight
                    .iter()
                    .filter(|&(_, e)| e.dest == server)
                    .map(|(&rid, _)| rid),
            );
            for block in store.reimage_server(server) {
                if store.replica_count(block) > 0 {
                    let at = pipeline.schedule(now);
                    heap.push(QueuedRepair { at, block });
                }
            }
            continue;
        }

        // --- Injected fault (only reachable with a non-empty plan). ---
        let (_, action) = fault_actions[fault_idx];
        fault_idx += 1;
        match action {
            FaultAction::Crash(s) => {
                frt.faults_injected += 1;
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/crash", now);
                }
                if !frt.down[s.0 as usize] {
                    frt.down[s.0 as usize] = true;
                    // Tear down everything touching the server: its
                    // NIC links, its disk streams, and any repair
                    // reading from or writing to it. Replicas stay in
                    // the store until the heartbeat declares it dead.
                    let mut rids: BTreeSet<u64> = BTreeSet::new();
                    if let Some(f) = fabric.as_mut() {
                        rids.extend(f.fail_endpoint(now, s));
                    }
                    if let Some(p) = disks.as_mut() {
                        rids.extend(p.fail_server(now, s));
                    }
                    rids.extend(
                        in_flight
                            .iter()
                            .filter(|&(_, e)| e.src == s || e.dest == s)
                            .map(|(&rid, _)| rid),
                    );
                    abort_repairs(
                        &rids,
                        &mut in_flight,
                        &mut in_flight_blocks,
                        &mut doomed,
                        &mut fabric,
                        &mut disks,
                        &mut frt,
                        &mut heap,
                        now,
                    );
                }
            }
            FaultAction::DeclareDead { server, crashed } => {
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/declare-dead", now);
                }
                // The heartbeat timeout elapsed: the namenode writes
                // the server off and its blocks become re-replication
                // work, paced by the throttle from the crash instant
                // (`schedule` adds the detection delay itself).
                for block in store.reimage_server(server) {
                    if store.replica_count(block) > 0 {
                        let at = pipeline.schedule(crashed);
                        heap.push(QueuedRepair { at, block });
                    }
                }
            }
            FaultAction::Restore(s) => {
                frt.faults_injected += 1;
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/restart", now);
                }
                if frt.down[s.0 as usize] {
                    frt.down[s.0 as usize] = false;
                    if let Some(f) = fabric.as_mut() {
                        f.restore_endpoint(now, s);
                    }
                }
            }
            FaultAction::UplinkDown(rack) => {
                frt.faults_injected += 1;
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/uplink-down", now);
                }
                let rids: BTreeSet<u64> = if let Some(f) = fabric.as_mut() {
                    let (up, dn) = {
                        let t = f.topology();
                        (t.rack_up(rack), t.rack_down(rack))
                    };
                    let mut r: BTreeSet<u64> = f.set_link_down(now, up).into_iter().collect();
                    r.extend(f.set_link_down(now, dn));
                    r
                } else {
                    // Without a network model an uplink outage cannot
                    // delay repairs; it is a no-op for durability.
                    BTreeSet::new()
                };
                abort_repairs(
                    &rids,
                    &mut in_flight,
                    &mut in_flight_blocks,
                    &mut doomed,
                    &mut fabric,
                    &mut disks,
                    &mut frt,
                    &mut heap,
                    now,
                );
            }
            FaultAction::UplinkUp(rack) => {
                frt.faults_injected += 1;
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/uplink-up", now);
                }
                if let Some(f) = fabric.as_mut() {
                    let (up, dn) = {
                        let t = f.topology();
                        (t.rack_up(rack), t.rack_down(rack))
                    };
                    f.set_link_up(now, up);
                    f.set_link_up(now, dn);
                }
            }
            FaultAction::DiskFail(s) => {
                frt.faults_injected += 1;
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/disk-fail", now);
                }
                // The disk dies but the server stays up: an unplanned
                // reimage. In-flight repairs reading from or writing
                // to the dead disk abort and retry.
                let mut rids: BTreeSet<u64> = BTreeSet::new();
                if let Some(p) = disks.as_mut() {
                    rids.extend(p.fail_server(now, s));
                }
                rids.extend(
                    in_flight
                        .iter()
                        .filter(|&(_, e)| e.src == s || e.dest == s)
                        .map(|(&rid, _)| rid),
                );
                abort_repairs(
                    &rids,
                    &mut in_flight,
                    &mut in_flight_blocks,
                    &mut doomed,
                    &mut fabric,
                    &mut disks,
                    &mut frt,
                    &mut heap,
                    now,
                );
                for block in store.reimage_server(s) {
                    if store.replica_count(block) > 0 {
                        let at = pipeline.schedule(now);
                        heap.push(QueuedRepair { at, block });
                    }
                }
            }
            FaultAction::DiskDegrade(s, factor) => {
                frt.faults_injected += 1;
                if let Some(o) = frt.obs {
                    frt.rec.instant(o.track, "fault/disk-degrade", now);
                }
                if let Some(p) = disks.as_mut() {
                    p.set_degrade(now, s, factor);
                }
            }
        }
    }

    // Close any still-open `retrying` states (the heap drains before
    // the loop exits, so this only fires on defensive paths).
    if frt.armed && !frt.retrying.is_empty() {
        let mut open: Vec<u64> = frt.retrying.drain().collect();
        open.sort_unstable();
        if let Some(o) = frt.obs {
            for b in open {
                frt.rec.state_exit(o.states, b, end_time);
            }
        }
    }
    if frt.rec.is_on() {
        let pairs = [
            ("dfs/faults_injected", frt.faults_injected),
            ("dfs/repairs_aborted", frt.repairs_aborted),
            ("dfs/fault_retries", frt.fault_retries),
            ("dfs/retries_exhausted", frt.retries_exhausted),
            ("dfs/repairs_shed", frt.repairs_shed),
        ];
        for (name, value) in pairs {
            let c = frt.rec.counter(name);
            frt.rec.counter_set(c, value);
        }
    }

    let lost = store.lost_blocks();
    let result = DurabilityResult {
        n_blocks: created,
        lost_blocks: lost,
        reimages: reimage_count,
        repairs,
        repairs_too_late: too_late,
        lost_percent: if created == 0 {
            0.0
        } else {
            lost as f64 / created as f64 * 100.0
        },
        faults_injected: frt.faults_injected,
        repairs_aborted: frt.repairs_aborted,
        fault_retries: frt.fault_retries,
        retries_exhausted: frt.retries_exhausted,
        repairs_shed: frt.repairs_shed,
        fabric: fabric.as_ref().map(|f| *f.stats()),
        disk: disks.as_ref().map(|p| *p.stats()),
    };
    (result, frt.rec)
}

/// One re-replication in transfer: its remaining components (network
/// flow, source disk read, destination disk write), its endpoints, and
/// the latest component completion seen so far. The source is recorded
/// so a crash or disk failure there can abort the transfer.
#[derive(Debug, Clone, Copy)]
struct InFlightRepair {
    xfer: TransferParts,
    block: BlockId,
    src: ServerId,
    dest: ServerId,
}

/// A single server-granular fault consequence, expanded from the plan's
/// rack- and server-level events.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    /// The server stops heartbeating: links die, streams die, in-flight
    /// repairs touching it abort. Its replicas are still on disk.
    Crash(ServerId),
    /// The heartbeat timeout elapsed without a restart: the namenode
    /// writes the server off and queues re-replication for its blocks.
    DeclareDead { server: ServerId, crashed: SimTime },
    /// The server comes back. If it was declared dead it returns empty
    /// (already reimaged); otherwise its replicas were never lost.
    Restore(ServerId),
    /// Both rack↔agg links die (flows crossing them abort and retry).
    UplinkDown(u32),
    /// Both rack↔agg links recover (parked flows rescue).
    UplinkUp(u32),
    /// The disk dies and is replaced: an unplanned reimage while the
    /// server itself stays reachable.
    DiskFail(ServerId),
    /// Brown-out: the disk's secondary bandwidth scales by a factor.
    DiskDegrade(ServerId, f64),
}

/// Durability-side observability handles for the fault machinery.
#[derive(Debug, Clone, Copy)]
struct DurObs {
    track: TrackId,
    states: StateTrackId,
}

/// Runtime fault state threaded through the repair path: the down mask,
/// per-block retry budgets, and the fault counters. `armed == false`
/// (empty plan) short-circuits every branch that could perturb the
/// fault-free trajectory.
struct FaultRt {
    armed: bool,
    max_retries: u32,
    backoff: BackoffConfig,
    shed_above: Option<usize>,
    seed: u64,
    down: Vec<bool>,
    attempts: HashMap<u64, u32>,
    retrying: HashSet<u64>,
    faults_injected: u64,
    repairs_aborted: u64,
    fault_retries: u64,
    retries_exhausted: u64,
    repairs_shed: u64,
    rec: Recorder,
    obs: Option<DurObs>,
}

impl FaultRt {
    /// The busy mask for placement — `None` when faults are off, so the
    /// fault-free placement RNG stream is untouched.
    fn busy(&self) -> Option<&[bool]> {
        if self.armed {
            Some(&self.down)
        } else {
            None
        }
    }

    /// A fault interrupted work on `block`: re-queue it with
    /// exponential backoff and jitter, or — past `max_retries` — give
    /// up and account the block as permanently under-repaired.
    fn retry_or_abandon(
        &mut self,
        heap: &mut BinaryHeap<QueuedRepair>,
        block: BlockId,
        now: SimTime,
    ) {
        let a = self.attempts.entry(block.0).or_insert(0);
        *a += 1;
        let attempt = *a;
        if attempt <= self.max_retries {
            self.fault_retries += 1;
            let at = now + self.backoff.delay(self.seed, block.0, attempt);
            heap.push(QueuedRepair { at, block });
            if let Some(o) = self.obs {
                self.rec.state_enter(o.states, block.0, "failed", now);
                self.rec.state_enter(o.states, block.0, "retrying", now);
            }
            self.retrying.insert(block.0);
        } else {
            self.retries_exhausted += 1;
            if let Some(o) = self.obs {
                self.rec.state_enter(o.states, block.0, "failed", now);
                self.rec.state_exit(o.states, block.0, now);
            }
            self.retrying.remove(&block.0);
        }
    }
}

/// Expands a [`FaultPlan`] into the server-granular action list the
/// merged loop consumes: rack power events fan out to every server in
/// the rack, and each crash that no restart beats to the heartbeat
/// deadline gets a `DeclareDead` at crash + detection delay. Events
/// past `horizon` (the simulated span) are dropped so an armed plan
/// whose events never fire is exactly a no-op.
fn expand_fault_plan(
    dc: &Datacenter,
    plan: &FaultPlan,
    detection: SimDuration,
    horizon: SimTime,
) -> Vec<(SimTime, FaultAction)> {
    let n = dc.n_servers() as u32;
    let n_racks = dc.n_racks() as u32;
    let mut raw: Vec<(SimTime, u32, FaultAction)> = Vec::new();
    let mut seq = 0u32;
    for ev in plan.events.iter().filter(|e| e.at <= horizon) {
        let mut add = |action: FaultAction| {
            raw.push((ev.at, seq, action));
            seq += 1;
        };
        match ev.kind {
            FaultKind::ServerCrash { server } if server < n => {
                add(FaultAction::Crash(ServerId(server)));
            }
            FaultKind::ServerRestart { server } if server < n => {
                add(FaultAction::Restore(ServerId(server)));
            }
            FaultKind::RackPowerLoss { rack } if rack < n_racks => {
                for s in dc.servers_in_rack(rack) {
                    add(FaultAction::Crash(ServerId(s)));
                }
            }
            FaultKind::RackPowerRestore { rack } if rack < n_racks => {
                for s in dc.servers_in_rack(rack) {
                    add(FaultAction::Restore(ServerId(s)));
                }
            }
            FaultKind::RackUplinkDown { rack } if rack < n_racks => {
                add(FaultAction::UplinkDown(rack));
            }
            FaultKind::RackUplinkUp { rack } if rack < n_racks => {
                add(FaultAction::UplinkUp(rack));
            }
            FaultKind::DiskFail { server } if server < n => {
                add(FaultAction::DiskFail(ServerId(server)));
            }
            FaultKind::DiskDegrade { server, factor }
                if server < n && factor.is_finite() && factor >= 0.0 =>
            {
                add(FaultAction::DiskDegrade(ServerId(server), factor));
            }
            // Out-of-range targets (a plan drawn for a different
            // cluster shape) are skipped rather than panicking.
            _ => {}
        }
    }
    let crashes: Vec<(SimTime, ServerId)> = raw
        .iter()
        .filter_map(|&(t, _, a)| match a {
            FaultAction::Crash(s) => Some((t, s)),
            _ => None,
        })
        .collect();
    for (t, s) in crashes {
        let dead_at = t + detection;
        let restored_in_time = raw.iter().any(|&(rt, _, a)| {
            matches!(a, FaultAction::Restore(rs) if rs == s) && rt > t && rt < dead_at
        });
        if !restored_in_time {
            raw.push((
                dead_at,
                seq,
                FaultAction::DeclareDead {
                    server: s,
                    crashed: t,
                },
            ));
            seq += 1;
        }
    }
    raw.sort_by_key(|&(t, q, _)| (t, q));
    raw.into_iter().map(|(t, _, a)| (t, a)).collect()
}

/// Tears down a set of fault-hit in-flight repairs: aborts their
/// remaining fabric flows and disk streams, releases their in-flight
/// accounting, and re-queues each block with backoff (or abandons it
/// past the retry budget). Ids not actually in flight are ignored.
#[allow(clippy::too_many_arguments)]
fn abort_repairs(
    rids: &BTreeSet<u64>,
    in_flight: &mut HashMap<u64, InFlightRepair>,
    in_flight_blocks: &mut HashMap<u64, u32>,
    doomed: &mut HashSet<u64>,
    fabric: &mut Option<Fabric>,
    disks: &mut Option<DiskPool>,
    frt: &mut FaultRt,
    heap: &mut BinaryHeap<QueuedRepair>,
    now: SimTime,
) {
    let live: Vec<u64> = rids
        .iter()
        .copied()
        .filter(|r| in_flight.contains_key(r))
        .collect();
    if live.is_empty() {
        return;
    }
    let tagset: HashSet<u64> = live.iter().copied().collect();
    if let Some(f) = fabric.as_mut() {
        f.abort_flows_with_tags(now, &tagset);
    }
    if let Some(p) = disks.as_mut() {
        p.abort_streams_with_tags(now, &tagset);
    }
    for rid in live {
        let e = in_flight.remove(&rid).expect("filtered to in-flight ids");
        doomed.remove(&rid);
        if let Some(c) = in_flight_blocks.get_mut(&e.block.0) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                in_flight_blocks.remove(&e.block.0);
            }
        }
        frt.repairs_aborted += 1;
        frt.retry_or_abandon(heap, e.block, now);
    }
}

/// Starts the 256 MB re-replication transfer for `block` when its
/// throttle slot releases: picks the destination (reserving nothing —
/// space is re-checked when the transfer lands), prefers a same-rack
/// source, and schedules whichever components are modeled — a fabric
/// flow, and/or a source-disk read plus destination-disk write. The
/// block stays at its reduced replica count until every component has
/// finished and [`land_repair`] runs, so the repair window is set by
/// the slowest of the three rates.
#[allow(clippy::too_many_arguments)]
fn start_repair_transfer(
    dc: &Datacenter,
    placer: &Placer<'_>,
    store: &mut BlockStore,
    rng: &mut rand::rngs::StdRng,
    fabric: &mut Option<Fabric>,
    disks: &mut Option<DiskPool>,
    in_flight: &mut HashMap<u64, InFlightRepair>,
    next_rid: &mut u64,
    in_flight_blocks: &mut HashMap<u64, u32>,
    block: BlockId,
    replication: usize,
    too_late: &mut u64,
    heap: &mut BinaryHeap<QueuedRepair>,
    pipeline: &mut RepairPipeline,
    frt: &mut FaultRt,
    now: SimTime,
) {
    let count = store.replica_count(block);
    if count == 0 {
        *too_late += 1;
        return;
    }
    let streaming = *in_flight_blocks.get(&block.0).unwrap_or(&0) as usize;
    if count + streaming >= replication {
        // Durable plus in-flight copies already cover the target; a
        // landing transfer re-queues if one of them fails, so launching
        // a phantom duplicate here would only burn bandwidth.
        return;
    }
    let existing: Vec<u32> = store.replicas(block).to_vec();
    let Some(dest) = placer.place_repair(rng, store, &existing, frt.busy()) else {
        // No destination (cluster full): retry after a detection delay.
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
        return;
    };
    if frt.armed && frt.down[dest.0 as usize] {
        // Busy-oblivious policies (Stock) can pick a crashed
        // destination; treat it like no destination and re-queue.
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
        return;
    }
    let src = if frt.armed {
        // Read from a live replica only; crashed-but-not-dead servers
        // still hold the data but cannot serve it.
        let live: Vec<u32> = existing
            .iter()
            .copied()
            .filter(|&s| !frt.down[s as usize])
            .collect();
        if live.is_empty() {
            frt.retry_or_abandon(heap, block, now);
            return;
        }
        crate::repair::repair_source(dc, &live, dest)
    } else {
        crate::repair::repair_source(dc, &existing, dest)
    };
    if frt.armed {
        if let Some(f) = fabric.as_ref() {
            if !f.path_up(src, dest) {
                // A dead uplink separates source and destination;
                // starting the flow now would only park it. Back off.
                frt.retry_or_abandon(heap, block, now);
                return;
            }
        }
    }
    let rid = *next_rid;
    *next_rid += 1;
    let mut parts = 0u32;
    if let Some(f) = fabric.as_mut() {
        f.schedule_flow(now, src, dest, BLOCK_BYTES, rid);
        parts += 1;
    }
    if let Some(p) = disks.as_mut() {
        p.schedule_stream(now, src, IoDir::Read, BLOCK_BYTES, rid);
        p.schedule_stream(now, dest, IoDir::Write, BLOCK_BYTES, rid);
        parts += 2;
    }
    in_flight.insert(
        rid,
        InFlightRepair {
            xfer: TransferParts::new(parts, now),
            block,
            src,
            dest,
        },
    );
    *in_flight_blocks.entry(block.0).or_insert(0) += 1;
}

/// Completes a repair flow: the new replica becomes durable now, unless
/// the block died in flight, the destination filled up, or a concurrent
/// repair already satisfied it.
#[allow(clippy::too_many_arguments)]
fn land_repair(
    store: &mut BlockStore,
    in_flight_blocks: &mut HashMap<u64, u32>,
    block: BlockId,
    dest: ServerId,
    dest_destroyed: bool,
    replication: usize,
    repairs: &mut u64,
    too_late: &mut u64,
    heap: &mut BinaryHeap<QueuedRepair>,
    pipeline: &mut RepairPipeline,
    frt: &mut FaultRt,
    now: SimTime,
) {
    // This flow is no longer in flight, whatever happens below.
    if let Some(n) = in_flight_blocks.get_mut(&block.0) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            in_flight_blocks.remove(&block.0);
        }
    }
    let streaming = *in_flight_blocks.get(&block.0).unwrap_or(&0) as usize;
    let count = store.replica_count(block);
    if count == 0 {
        // Every source died while the transfer was in flight; the copy
        // cannot have finished. (A partial-source failure would restart
        // from a survivor; we fold that into the completed transfer.)
        *too_late += 1;
        return;
    }
    if count >= replication {
        return; // concurrently satisfied
    }
    if dest_destroyed || !store.has_space(dest) || store.replicas(block).contains(&dest.0) {
        // The destination died, filled up, or grabbed this very block
        // while the transfer ran; re-queue through the throttle unless
        // a sibling flow is still inbound to cover the gap.
        if count + streaming < replication {
            let at = pipeline.schedule(now);
            heap.push(QueuedRepair { at, block });
        }
        return;
    }
    store.add_replica(block, dest);
    *repairs += 1;
    // A durable copy landed: the block's fault-retry budget resets.
    frt.attempts.remove(&block.0);
    // Still short, counting copies still inbound? Queue another.
    if store.replica_count(block) + streaming < replication {
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
    }
}

#[allow(clippy::too_many_arguments)]
fn apply_repair(
    placer: &Placer<'_>,
    store: &mut BlockStore,
    rng: &mut rand::rngs::StdRng,
    block: BlockId,
    replication: usize,
    repairs: &mut u64,
    too_late: &mut u64,
    heap: &mut BinaryHeap<QueuedRepair>,
    pipeline: &mut RepairPipeline,
    frt: &mut FaultRt,
    now: SimTime,
) {
    let count = store.replica_count(block);
    if count == 0 {
        *too_late += 1;
        return;
    }
    if count >= replication {
        return; // already fully replicated (duplicate repair entries)
    }
    let existing: Vec<u32> = store.replicas(block).to_vec();
    if let Some(dest) = placer.place_repair(rng, store, &existing, frt.busy()) {
        if frt.armed && frt.down[dest.0 as usize] {
            // Busy-oblivious policies (Stock) can pick a crashed
            // destination; treat it like no destination and re-queue.
            let at = pipeline.schedule(now);
            heap.push(QueuedRepair { at, block });
            return;
        }
        store.add_replica(block, dest);
        *repairs += 1;
        frt.attempts.remove(&block.0);
        // Still short? (More than one replica was lost.) Queue another.
        if store.replica_count(block) < replication {
            let at = pipeline.schedule(now);
            heap.push(QueuedRepair { at, block });
        }
    } else {
        // No destination (cluster full): retry after a detection delay.
        let at = pipeline.schedule(now);
        heap.push(QueuedRepair { at, block });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_sim::fault::{ClusterShape, FaultEvent, FaultProfile};
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc(scale: f64) -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(3).scaled(scale), 23)
    }

    fn shape_of(dc: &Datacenter) -> ClusterShape {
        ClusterShape {
            n_servers: dc.n_servers(),
            rack_size: harvest_cluster::datacenter::RACK_SIZE as usize,
        }
    }

    fn fingerprint(
        r: &DurabilityResult,
    ) -> (
        u64,
        u64,
        u64,
        u64,
        u64,
        Option<harvest_net::FabricStats>,
        Option<harvest_disk::DiskStats>,
    ) {
        (
            r.n_blocks,
            r.lost_blocks,
            r.reimages,
            r.repairs,
            r.repairs_too_late,
            r.fabric,
            r.disk,
        )
    }

    fn run(policy: PlacementPolicy, replication: usize, months: usize) -> DurabilityResult {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(policy, replication, 5);
        cfg.months = months;
        simulate_durability(&dc, &cfg)
    }

    #[test]
    fn blocks_are_created_to_fill_target() {
        let dc = dc(0.02);
        let cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 1);
        let result = simulate_durability(&dc, &cfg);
        let expected = dc.total_harvest_blocks() / 2 / 3;
        assert!(
            result.n_blocks as f64 > expected as f64 * 0.95,
            "created {} of expected {expected}",
            result.n_blocks
        );
    }

    #[test]
    fn reimages_happen_and_repairs_run() {
        let r = run(PlacementPolicy::Stock, 3, 3);
        assert!(r.reimages > 0);
        assert!(r.repairs > 0);
    }

    #[test]
    fn history_placement_loses_fewer_blocks_than_stock() {
        // DC-3 has the paper's highest reimage rate; three months of a
        // small cluster is enough for Stock to lose blocks.
        let stock = run(PlacementPolicy::Stock, 3, 6);
        let hist = run(PlacementPolicy::History, 3, 6);
        assert!(
            stock.lost_blocks > 0,
            "expected Stock losses in a high-reimage DC"
        );
        assert!(
            hist.lost_blocks * 5 < stock.lost_blocks.max(1),
            "HDFS-H ({}) not clearly better than Stock ({})",
            hist.lost_blocks,
            stock.lost_blocks
        );
    }

    #[test]
    fn four_way_replication_is_more_durable() {
        let r3 = run(PlacementPolicy::Stock, 3, 6);
        let r4 = run(PlacementPolicy::Stock, 4, 6);
        assert!(
            r4.lost_blocks <= r3.lost_blocks,
            "R=4 ({}) lost more than R=3 ({})",
            r4.lost_blocks,
            r3.lost_blocks
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(PlacementPolicy::History, 3, 2);
        let b = run(PlacementPolicy::History, 3, 2);
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.n_blocks, b.n_blocks);
    }

    #[test]
    fn lost_percent_is_consistent() {
        let r = run(PlacementPolicy::Stock, 3, 3);
        let expect = r.lost_blocks as f64 / r.n_blocks as f64 * 100.0;
        assert!((r.lost_percent - expect).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_constrained_repair_cannot_beat_instant_repair() {
        let dc = dc(0.02);
        let mut off = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        off.months = 4;
        let mut on = off.clone();
        // A slow fabric (1 GbE, 8:1 oversubscribed) stretches every
        // repair window by seconds plus contention, while staying above
        // the throttle's aggregate demand so the backlog is bounded.
        on.network = Some(NetworkConfig {
            nic_gbps: 1.0,
            oversubscription: 8.0,
            ..NetworkConfig::datacenter()
        });
        let r_off = simulate_durability(&dc, &off);
        let r_on = simulate_durability(&dc, &on);
        assert!(r_on.repairs > 0, "no repairs landed through the fabric");
        assert!(r_on.lost_blocks > 0, "DC-3 over 4 months must lose blocks");
        // The fabric delays each repair by seconds against a 10-minute
        // detection window, while placement RNG divergence between the
        // modes adds ±1% noise — so assert the networked loss stays in a
        // band around the instant-transfer loss instead of a strict
        // inequality the model does not guarantee per seed.
        let ratio = r_on.lost_blocks as f64 / r_off.lost_blocks.max(1) as f64;
        assert!(
            (0.8..=1.5).contains(&ratio),
            "networked loss ratio {ratio:.2} out of band: on {} off {}",
            r_on.lost_blocks,
            r_off.lost_blocks
        );
    }

    #[test]
    fn networked_durability_is_deterministic() {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::History, 3, 5);
        cfg.months = 2;
        cfg.network = Some(NetworkConfig::datacenter());
        let a = simulate_durability(&dc, &cfg);
        let b = simulate_durability(&dc, &cfg);
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.repairs_too_late, b.repairs_too_late);
    }

    #[test]
    fn disk_constrained_repair_cannot_beat_instant_repair() {
        // Disks stretch every repair window by the destination write
        // (~2.1 s for 256 MB at 120 MB/s) against a 10-minute detection
        // delay; loss stays in a band around the instant-transfer loss
        // (same argument as the network test above: the delay is real
        // but small, and placement RNG streams are identical because the
        // disk model draws no randomness).
        let dc = dc(0.02);
        let mut off = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        off.months = 4;
        let mut on = off.clone();
        on.disk = Some(DiskConfig::datacenter());
        let r_off = simulate_durability(&dc, &off);
        let r_on = simulate_durability(&dc, &on);
        assert!(r_on.repairs > 0, "no repairs landed through the disks");
        assert!(r_on.lost_blocks > 0, "DC-3 over 4 months must lose blocks");
        let ratio = r_on.lost_blocks as f64 / r_off.lost_blocks.max(1) as f64;
        assert!(
            (0.8..=1.5).contains(&ratio),
            "disked loss ratio {ratio:.2} out of band: on {} off {}",
            r_on.lost_blocks,
            r_off.lost_blocks
        );
    }

    #[test]
    fn armed_plan_with_no_reachable_events_is_bitwise_identical_to_none() {
        // The oracle pinning the no-fault path: a non-empty plan whose
        // only event falls past the horizon arms the whole machinery
        // (busy masks, fifth event source, live-source filtering) yet
        // must reproduce the fault-free trajectory bit for bit.
        let dc = dc(0.02);
        let mut base = DurabilityConfig::paper(PlacementPolicy::History, 3, 5);
        base.months = 2;
        base.network = Some(NetworkConfig::datacenter());
        base.disk = Some(DiskConfig::datacenter());
        let mut armed = base.clone();
        armed.faults = FaultPlan::with_events(vec![FaultEvent {
            at: SimTime::ZERO + SimDuration::from_days(365),
            kind: FaultKind::ServerCrash { server: 0 },
        }]);
        let a = simulate_durability(&dc, &base);
        let b = simulate_durability(&dc, &armed);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(b.faults_injected, 0);
        assert_eq!(b.repairs_aborted, 0);
        assert_eq!(b.fault_retries, 0);
    }

    #[test]
    fn rack_power_loss_expands_and_fast_restart_cancels_declare_dead() {
        let dc = dc(0.02);
        let detection = SimDuration::from_mins(10);
        let horizon = SimTime::ZERO + SimDuration::from_days(60);
        let t0 = SimTime::ZERO + SimDuration::from_hours(1);
        let plan = FaultPlan::with_events(vec![
            FaultEvent {
                at: t0,
                kind: FaultKind::ServerCrash { server: 0 },
            },
            FaultEvent {
                at: t0 + SimDuration::from_mins(5),
                kind: FaultKind::ServerRestart { server: 0 },
            },
            FaultEvent {
                at: t0,
                kind: FaultKind::RackPowerLoss { rack: 1 },
            },
        ]);
        let actions = expand_fault_plan(&dc, &plan, detection, horizon);
        let rack_servers = dc.servers_in_rack(1).len();
        let crashes = actions
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::Crash(_)))
            .count();
        assert_eq!(crashes, rack_servers + 1);
        // Server 0 restarts inside the heartbeat window, so only the
        // powered-off rack gets declared dead.
        assert!(!actions
            .iter()
            .any(|(_, a)| matches!(a, FaultAction::DeclareDead { server, .. } if server.0 == 0)));
        let deads = actions
            .iter()
            .filter(|(_, a)| matches!(a, FaultAction::DeclareDead { .. }))
            .count();
        assert_eq!(deads, rack_servers);
        assert!(actions.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn rack_loss_makes_durability_strictly_worse() {
        // The acceptance scenario: a rack-loss storm on DC-9 loses
        // strictly more blocks than the fault-free run — blocks whose
        // replicas all sat in the powered-off rack are written off when
        // the heartbeat declares their servers dead.
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 23);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        cfg.months = 2;
        let clean = simulate_durability(&dc, &cfg);
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.faults =
            FaultProfile::RackLoss.plan(5, shape_of(&dc), SimDuration::from_days(60));
        let faulted = simulate_durability(&dc, &faulted_cfg);
        assert!(faulted.faults_injected > 0, "no faults applied");
        assert!(
            faulted.lost_blocks > clean.lost_blocks,
            "rack loss did not hurt durability: faulted {} vs clean {}",
            faulted.lost_blocks,
            clean.lost_blocks
        );
    }

    #[test]
    fn retries_recover_more_blocks_than_giving_up() {
        // With the retry budget at zero every fault-aborted repair is
        // abandoned; with backoff retries the same storm recovers
        // strictly more replicas.
        let dc = dc(0.01);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        cfg.months = 1;
        // A slow fabric keeps ~40 transfers in flight at once during
        // the repair storm, so the second rack loss below lands while
        // repairs are mid-transfer and must abort a batch of them.
        cfg.network = Some(NetworkConfig {
            nic_gbps: 0.1,
            oversubscription: 4.0,
            ..NetworkConfig::datacenter()
        });
        // Stage the storm near the end of the simulated month: blocks
        // whose repairs are abandoned stay under-replicated at the end
        // of the run instead of being topped back up by later reimage
        // activity, so the retry budget's effect survives in the final
        // repair tally.
        let h = SimTime::ZERO + SimDuration::from_days(28);
        // Rack 0 dies for good: its ~24k replicas become a repair storm
        // that runs for hours. Mid-storm, racks 1 and 2 brown out for
        // five minutes — shorter than the heartbeat window, so their
        // servers are never declared dead and no re-replication is ever
        // queued for the aborted transfers. The backoff retry is then
        // the only path that finishes those repairs, which is exactly
        // what the max_retries = 0 comparison below measures.
        let mut events = vec![FaultEvent {
            at: h + SimDuration::from_hours(1),
            kind: FaultKind::RackPowerLoss { rack: 0 },
        }];
        for rack in [1u32, 2] {
            events.push(FaultEvent {
                at: h + SimDuration::from_mins(90),
                kind: FaultKind::RackPowerLoss { rack },
            });
            events.push(FaultEvent {
                at: h + SimDuration::from_mins(95),
                kind: FaultKind::RackPowerRestore { rack },
            });
        }
        let plan = FaultPlan::with_events(events);
        let mut with = cfg.clone();
        with.faults = plan.clone();
        let mut without = cfg.clone();
        without.faults = plan;
        without.faults.max_retries = 0;
        let w = simulate_durability(&dc, &with);
        let wo = simulate_durability(&dc, &without);
        assert!(w.repairs_aborted > 0, "storm never aborted a repair");
        assert!(w.fault_retries > 0, "aborted repairs never retried");
        assert!(wo.retries_exhausted > 0, "zero budget never exhausted");
        assert!(
            w.repairs > wo.repairs,
            "retries did not recover more replicas: with {} vs without {}",
            w.repairs,
            wo.repairs
        );
        assert!(
            w.lost_blocks <= wo.lost_blocks,
            "retries lost more blocks: with {} vs without {}",
            w.lost_blocks,
            wo.lost_blocks
        );
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::History, 3, 5);
        cfg.months = 2;
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.disk = Some(DiskConfig::datacenter());
        cfg.faults =
            FaultProfile::CorrelatedStorm.plan(9, shape_of(&dc), SimDuration::from_days(60));
        let a = simulate_durability(&dc, &cfg);
        let b = simulate_durability(&dc, &cfg);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.repairs_aborted, b.repairs_aborted);
        assert_eq!(a.fault_retries, b.fault_retries);
        assert_eq!(a.retries_exhausted, b.retries_exhausted);
    }

    #[test]
    fn recording_a_faulted_run_changes_nothing_and_mirrors_counters() {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, 5);
        cfg.months = 2;
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.faults = FaultProfile::RackLoss.plan(11, shape_of(&dc), SimDuration::from_days(60));
        let plain = simulate_durability(&dc, &cfg);
        let (recorded, rec) = simulate_durability_recorded(&dc, &cfg, Recorder::new("durability"));
        assert_eq!(fingerprint(&plain), fingerprint(&recorded));
        assert_eq!(
            rec.counter_value("dfs/faults_injected"),
            Some(recorded.faults_injected)
        );
        assert_eq!(
            rec.counter_value("dfs/repairs_aborted"),
            Some(recorded.repairs_aborted)
        );
    }

    #[test]
    fn network_and_disk_compose_deterministically() {
        let dc = dc(0.02);
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::History, 3, 5);
        cfg.months = 2;
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.disk = Some(DiskConfig::datacenter());
        let a = simulate_durability(&dc, &cfg);
        let b = simulate_durability(&dc, &cfg);
        assert!(a.repairs > 0, "no repairs with both models on");
        assert_eq!(a.lost_blocks, b.lost_blocks);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.repairs_too_late, b.repairs_too_late);
    }
}
