//! K-Means clustering with k-means++ seeding.
//!
//! §4.1: the clustering service "uses the K-Means algorithm to cluster the
//! profiles in each pattern into classes." This implementation is
//! deterministic given the caller's RNG, handles `k >= n` by returning one
//! cluster per point, and reseeds empty clusters to the farthest point.

use rand::{Rng, RngExt};

/// The output of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `assignments[i]` is the cluster index of input point `i`.
    pub assignments: Vec<usize>,
    /// Cluster centroids; `centroids.len()` is the effective `k`.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of points to their centroid.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Clusters `points` into (at most) `k` groups.
///
/// Uses k-means++ initialization and Lloyd iterations until assignments
/// stop changing or `max_iters` is reached. If `points.len() <= k`, each
/// point becomes its own cluster.
///
/// # Panics
///
/// Panics if `k == 0`, `points` is empty, or the points have inconsistent
/// dimensionality.
pub fn kmeans<R: Rng + ?Sized>(
    rng: &mut R,
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    assert!(!points.is_empty(), "cannot cluster zero points");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent point dimensionality"
    );

    if points.len() <= k {
        return KMeansResult {
            assignments: (0..points.len()).collect(),
            centroids: points.to_vec(),
            inertia: 0.0,
            iterations: 0,
        };
    }

    let mut centroids = kmeanspp_init(rng, points, k);
    let mut assignments = vec![usize::MAX; points.len()];
    let mut iterations = 0;

    for _ in 0..max_iters {
        iterations += 1;
        let mut changed = false;

        // Assignment step.
        for (i, p) in points.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    sq_dist(p, a.1)
                        .partial_cmp(&sq_dist(p, b.1))
                        .expect("NaN distance")
                })
                .expect("at least one centroid")
                .0;
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        if !changed {
            break;
        }

        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the point farthest from its
                // current centroid, a standard fix that keeps k stable.
                let (far_idx, _) = points
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        sq_dist(a.1, &centroids[assignments[a.0]])
                            .partial_cmp(&sq_dist(b.1, &centroids[assignments[b.0]]))
                            .expect("NaN distance")
                    })
                    .expect("non-empty points");
                centroids[c] = points[far_idx].clone();
            } else {
                for (d, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *d = s / counts[c] as f64;
                }
            }
        }
    }

    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();

    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

fn kmeanspp_init<R: Rng + ?Sized>(rng: &mut R, points: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.random_range(0..points.len());
    centroids.push(points[first].clone());

    let mut dists: Vec<f64> = points.iter().map(|p| sq_dist(p, &centroids[0])).collect();

    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(points[next].clone());
        for (d, p) in dists.iter_mut().zip(points) {
            *d = d.min(sq_dist(p, centroids.last().expect("just pushed")));
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let jitter = (i as f64 * 0.618).fract() * 0.2;
            pts.push(vec![0.0 + jitter, 0.0 + jitter]);
            pts.push(vec![10.0 + jitter, 0.0 - jitter]);
            pts.push(vec![5.0 - jitter, 8.0 + jitter]);
        }
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let pts = three_blobs();
        let result = kmeans(&mut rng(), &pts, 3, 100);
        assert_eq!(result.k(), 3);
        // Points pushed in the same stride-3 slot must share a cluster.
        for chunk in pts.chunks(3).skip(1) {
            let _ = chunk;
        }
        for offset in 0..3 {
            let first = result.assignments[offset];
            for i in (offset..pts.len()).step_by(3) {
                assert_eq!(result.assignments[i], first, "blob {offset} split");
            }
        }
        // Tight blobs: inertia should be small relative to blob separation.
        assert!(result.inertia < 10.0, "inertia {}", result.inertia);
    }

    #[test]
    fn k_greater_than_n_gives_singletons() {
        let pts = vec![vec![1.0], vec![2.0]];
        let result = kmeans(&mut rng(), &pts, 5, 10);
        assert_eq!(result.k(), 2);
        assert_eq!(result.assignments, vec![0, 1]);
        assert_eq!(result.inertia, 0.0);
    }

    #[test]
    fn identical_points_form_one_effective_center() {
        let pts = vec![vec![3.0, 3.0]; 20];
        let result = kmeans(&mut rng(), &pts, 4, 50);
        assert_eq!(result.inertia, 0.0);
        for &a in &result.assignments {
            assert!((result.centroids[a][0] - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = three_blobs();
        let r1 = kmeans(&mut StdRng::seed_from_u64(7), &pts, 3, 100);
        let r2 = kmeans(&mut StdRng::seed_from_u64(7), &pts, 3, 100);
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }

    #[test]
    fn cluster_sizes_sum_to_n() {
        let pts = three_blobs();
        let result = kmeans(&mut rng(), &pts, 3, 100);
        assert_eq!(result.cluster_sizes().iter().sum::<usize>(), pts.len());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        kmeans(&mut rng(), &[vec![1.0]], 0, 10);
    }

    #[test]
    #[should_panic(expected = "cannot cluster zero points")]
    fn empty_points_panics() {
        kmeans(&mut rng(), &[], 2, 10);
    }

    #[test]
    #[should_panic(expected = "inconsistent point dimensionality")]
    fn mismatched_dims_panics() {
        let pts = vec![vec![1.0], vec![1.0, 2.0], vec![1.0], vec![2.0]];
        kmeans(&mut rng(), &pts, 2, 10);
    }
}
