//! Benchmarks for the scheduling stack (Figures 10, 11, 13, 14 and the
//! §6.2 clustering/selection microbenchmarks).

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_cluster::{Datacenter, UtilizationView};
use harvest_jobs::length::JobLength;
use harvest_jobs::tpcds::tpcds_suite;
use harvest_jobs::workload::Workload;
use harvest_sched::classes::ClusteringService;
use harvest_sched::headroom::RankingWeights;
use harvest_sched::policy::SchedPolicy;
use harvest_sched::select::select_classes;
use harvest_sched::sim::{SchedSim, SchedSimConfig};
use harvest_sim::rng::stream_rng;
use harvest_sim::SimDuration;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

fn bench_scheduling(c: &mut Criterion) {
    let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.05), 42);
    let view = UtilizationView::unscaled(&dc);

    // §6.2: the daily clustering job ("2 minutes for DC-9" at full scale).
    c.bench_function("micro_clustering_service_build", |b| {
        b.iter(|| black_box(ClusteringService::build(black_box(&dc), 42)))
    });

    // §6.2: class selection ("less than 1 msec on average").
    let svc = ClusteringService::build(&dc, 42);
    let utils = vec![0.3; svc.class_count()];
    let weights = RankingWeights::paper();
    c.bench_function("micro_class_selection_alg1", |b| {
        let mut rng = stream_rng(7, "bench-select");
        b.iter(|| {
            black_box(select_classes(
                &mut rng,
                black_box(&svc),
                &weights,
                JobLength::Medium,
                64,
                &utils,
            ))
        })
    });

    // Figures 11/13: a full (small) co-location simulation per policy.
    let mut group = c.benchmark_group("fig13_sched_sim_1h");
    group.sample_size(10);
    for policy in [SchedPolicy::PrimaryAware, SchedPolicy::History] {
        group.bench_function(policy.label(), |b| {
            b.iter(|| {
                let mut rng = stream_rng(3, "bench-wl");
                let wl = Workload::poisson(
                    &mut rng,
                    tpcds_suite(),
                    SimDuration::from_secs(300),
                    SimDuration::from_hours(1),
                );
                let mut cfg = SchedSimConfig::testbed(policy, 3);
                cfg.horizon = SimDuration::from_hours(1);
                cfg.drain = SimDuration::from_hours(1);
                black_box(SchedSim::new(&dc, &view, &wl, cfg).run())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduling
}
criterion_main!(benches);
