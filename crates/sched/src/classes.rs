//! The clustering service (§4.1, §5.3).
//!
//! "The clustering algorithm periodically (e.g., once per day) takes the
//! most recent time series of CPU utilizations from the average server of
//! each primary tenant, runs the FFT algorithm on the series, groups the
//! tenants into the three patterns … and then uses the K-Means algorithm
//! to cluster the profiles in each pattern into classes. Clustering tags
//! each class with the utilization pattern, its average utilization, and
//! its peak utilization."
//!
//! For DC-9 the paper's clustering produces 23 classes (13 periodic, 5
//! constant, 5 unpredictable) — the default `k` per pattern here.

use harvest_cluster::{Datacenter, ServerId, TenantId, UtilizationView};
use harvest_signal::classify::{classify, ClassifierConfig, UtilizationPattern};
use harvest_signal::features::{normalize_features, TraceFeatures};
use harvest_signal::kmeans::kmeans;
use harvest_sim::rng::stream_rng;

/// Default K-Means `k` for [periodic, constant, unpredictable] (the class
/// counts the paper reports for DC-9).
pub const DEFAULT_K: [usize; 3] = [13, 5, 5];

/// One utilization class: a group of tenants with similar patterns.
#[derive(Debug, Clone)]
pub struct TenantClass {
    /// Class index within the service.
    pub id: usize,
    /// The shared utilization pattern.
    pub pattern: UtilizationPattern,
    /// Average utilization across member tenants (server-weighted).
    pub avg_util: f64,
    /// Peak utilization across member tenants (server-weighted mean of
    /// tenant peaks).
    pub peak_util: f64,
    /// Member tenants.
    pub tenants: Vec<TenantId>,
    /// All servers owned by member tenants.
    pub servers: Vec<ServerId>,
}

impl TenantClass {
    /// Number of servers in the class.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }
}

/// The clustering service: tenant → class mapping plus class metadata.
#[derive(Debug, Clone)]
pub struct ClusteringService {
    classes: Vec<TenantClass>,
    tenant_class: Vec<usize>,
}

impl ClusteringService {
    /// Clusters the datacenter's tenants from their unscaled traces with
    /// the default per-pattern `k`.
    pub fn build(dc: &Datacenter, seed: u64) -> Self {
        let view = UtilizationView::unscaled(dc);
        Self::build_from_view(dc, &view, seed, DEFAULT_K)
    }

    /// Clusters with `k` scaled to the tenant population: roughly one
    /// class per four tenants of a pattern, capped at the paper's DC-9
    /// class counts. Scheduling against scaled-down datacenters needs
    /// this — with the full 23 classes over a few dozen tenants every
    /// class is a single tenant, and class-restricted placement
    /// serializes jobs instead of protecting them.
    pub fn build_adaptive(dc: &Datacenter, view: &UtilizationView, seed: u64) -> Self {
        let n = dc.n_tenants();
        let k = |cap: usize| (n / 12).clamp(1, cap);
        Self::build_from_view(
            dc,
            view,
            seed,
            [k(DEFAULT_K[0]), k(DEFAULT_K[1]), k(DEFAULT_K[2])],
        )
    }

    /// Clusters from a (possibly scaled) utilization view.
    ///
    /// `k_per_pattern` bounds the number of K-Means classes for
    /// [periodic, constant, unpredictable]; patterns with fewer tenants
    /// than `k` get one class per tenant.
    pub fn build_from_view(
        dc: &Datacenter,
        view: &UtilizationView,
        seed: u64,
        k_per_pattern: [usize; 3],
    ) -> Self {
        let classifier = ClassifierConfig::default();
        let mut by_pattern: [Vec<TenantId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for t in &dc.tenants {
            let trace = view.tenant_trace(t.id);
            let pattern = classify(trace.values(), &classifier);
            let slot = match pattern {
                UtilizationPattern::Periodic => 0,
                UtilizationPattern::Constant => 1,
                UtilizationPattern::Unpredictable => 2,
            };
            by_pattern[slot].push(t.id);
        }

        let mut rng = stream_rng(seed, "clustering-service");
        let mut classes = Vec::new();
        let mut tenant_class = vec![usize::MAX; dc.n_tenants()];

        for (slot, pattern) in [
            UtilizationPattern::Periodic,
            UtilizationPattern::Constant,
            UtilizationPattern::Unpredictable,
        ]
        .into_iter()
        .enumerate()
        {
            let members = &by_pattern[slot];
            if members.is_empty() {
                continue;
            }
            let k = k_per_pattern[slot].max(1);
            let features: Vec<Vec<f64>> = members
                .iter()
                .map(|&tid| TraceFeatures::extract(view.tenant_trace(tid).values(), 720.0).to_vec())
                .collect();
            let normalized = normalize_features(&features);
            let result = kmeans(&mut rng, &normalized, k.min(members.len()), 50);

            for cluster in 0..result.k() {
                let tenant_ids: Vec<TenantId> = members
                    .iter()
                    .zip(&result.assignments)
                    .filter(|(_, &a)| a == cluster)
                    .map(|(&tid, _)| tid)
                    .collect();
                if tenant_ids.is_empty() {
                    continue;
                }
                let class_id = classes.len();
                let mut servers = Vec::new();
                let mut weighted_avg = 0.0;
                let mut weighted_peak = 0.0;
                let mut total_servers = 0usize;
                for &tid in &tenant_ids {
                    let tenant = dc.tenant(tid);
                    let trace = view.tenant_trace(tid);
                    let n = tenant.n_servers();
                    weighted_avg += trace.mean() * n as f64;
                    weighted_peak += trace.peak() * n as f64;
                    total_servers += n;
                    servers.extend(tenant.server_ids());
                    tenant_class[tid.0 as usize] = class_id;
                }
                classes.push(TenantClass {
                    id: class_id,
                    pattern,
                    avg_util: weighted_avg / total_servers.max(1) as f64,
                    peak_util: weighted_peak / total_servers.max(1) as f64,
                    tenants: tenant_ids,
                    servers,
                });
            }
        }

        ClusteringService {
            classes,
            tenant_class,
        }
    }

    /// All classes.
    pub fn classes(&self) -> &[TenantClass] {
        &self.classes
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The class a tenant belongs to.
    pub fn class_of_tenant(&self, tenant: TenantId) -> &TenantClass {
        &self.classes[self.tenant_class[tenant.0 as usize]]
    }

    /// Number of classes with the given pattern.
    pub fn count_by_pattern(&self, pattern: UtilizationPattern) -> usize {
        self.classes.iter().filter(|c| c.pattern == pattern).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.1), 42)
    }

    #[test]
    fn every_tenant_gets_a_class() {
        let dc = dc();
        let svc = ClusteringService::build(&dc, 42);
        assert!(svc.class_count() > 0);
        for t in &dc.tenants {
            let class = svc.class_of_tenant(t.id);
            assert!(class.tenants.contains(&t.id));
        }
    }

    #[test]
    fn classes_partition_servers() {
        let dc = dc();
        let svc = ClusteringService::build(&dc, 42);
        let total: usize = svc.classes().iter().map(|c| c.n_servers()).sum();
        assert_eq!(total, dc.n_servers());
        let mut seen = std::collections::HashSet::new();
        for c in svc.classes() {
            for s in &c.servers {
                assert!(seen.insert(*s), "server {s} in two classes");
            }
        }
    }

    #[test]
    fn class_stats_are_utilizations() {
        let dc = dc();
        let svc = ClusteringService::build(&dc, 42);
        for c in svc.classes() {
            assert!((0.0..=1.0).contains(&c.avg_util), "avg {}", c.avg_util);
            assert!((0.0..=1.0).contains(&c.peak_util), "peak {}", c.peak_util);
            assert!(c.peak_util >= c.avg_util - 1e-9);
        }
    }

    #[test]
    fn respects_k_bounds() {
        let dc = dc();
        let svc =
            ClusteringService::build_from_view(&dc, &UtilizationView::unscaled(&dc), 42, [2, 2, 2]);
        for pattern in UtilizationPattern::ALL {
            assert!(svc.count_by_pattern(pattern) <= 2);
        }
    }

    #[test]
    fn all_three_patterns_present_in_dc9() {
        let dc = dc();
        let svc = ClusteringService::build(&dc, 42);
        for pattern in UtilizationPattern::ALL {
            assert!(
                svc.count_by_pattern(pattern) > 0,
                "no {pattern} classes found"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let dc = dc();
        let a = ClusteringService::build(&dc, 9);
        let b = ClusteringService::build(&dc, 9);
        assert_eq!(a.class_count(), b.class_count());
        for (ca, cb) in a.classes().iter().zip(b.classes()) {
            assert_eq!(ca.tenants, cb.tenants);
        }
    }
}
