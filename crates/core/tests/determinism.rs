//! The parallel-harness determinism oracle.
//!
//! The contract behind `repro --jobs N`: thread count decides only *who*
//! computes each sweep task, never what any report contains. These tests
//! pin it the same way the `ReshareScope::Global` and `TickSweep::Full`
//! oracles pin their incremental counterparts — run the reference path
//! (`jobs = 1`, a plain sequential loop) and a contended parallel path
//! (`jobs = 4`, forced even on fewer cores; threads do not need cores to
//! interleave) and assert the rendered reports are byte-identical.
//!
//! `micro` is the one deliberate exception: its report *is* a table of
//! measured wall-clock times, so its stdout is not comparable across any
//! two runs, parallel or not.

use harvest_core::{run_experiment, Scale};

/// A scale small enough to run every experiment twice in a test, while
/// still fanning out multiple tasks per experiment (2 runs, 2 scalings,
/// several utilization points).
fn tiny(jobs: usize) -> Scale {
    let mut s = Scale::quick();
    s.dc_scale = 0.02;
    s.runs = 2;
    s.sched_hours = 1;
    s.durability_months = 2;
    s.availability_days = 1;
    s.utilizations = vec![0.45];
    s.jobs = jobs;
    s
}

/// Every report-generating experiment (micro excluded, see above;
/// fig14 excluded from the in-process sweep purely for test budget —
/// its parallel machinery is exactly fig13's task flattening plus
/// fig15's parallel datacenter generation, both pinned here).
const EXPERIMENTS: [&str; 13] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12",
    "fig13", "fig15",
];

#[test]
fn reports_are_byte_identical_at_any_thread_count() {
    for id in EXPERIMENTS {
        let sequential = run_experiment(id, &tiny(1)).expect("experiment runs");
        let parallel = run_experiment(id, &tiny(4)).expect("experiment runs");
        assert!(
            sequential == parallel,
            "{id} report differs between --jobs 1 and --jobs 4:\n\
             --- jobs=1 ---\n{sequential}\n--- jobs=4 ---\n{parallel}"
        );
        assert!(sequential.contains("Figure"), "{id} missing title");
    }
}

#[test]
fn fig16_is_byte_identical_at_any_thread_count() {
    // fig16 appends two extra utilization points (0.70, 0.80), so it is
    // the widest sweep in the suite — kept out of the shared loop so a
    // failure names it directly.
    let sequential = run_experiment("fig16", &tiny(1)).expect("experiment runs");
    let parallel = run_experiment("fig16", &tiny(4)).expect("experiment runs");
    assert_eq!(sequential, parallel);
}

#[test]
fn repro_stdout_is_byte_identical_across_jobs() {
    // The binary-level pin: full stdout (reports + print layer) of the
    // cheap experiments must not move with --jobs; the wall-clock
    // timing table goes to stderr precisely so this holds.
    let run = |jobs: &str| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["fig7", "fig8", "--jobs", jobs])
            .output()
            .expect("repro runs");
        assert!(out.status.success(), "repro --jobs {jobs} failed");
        out
    };
    let sequential = run("1");
    let parallel = run("4");
    assert_eq!(
        sequential.stdout, parallel.stdout,
        "repro stdout differs between --jobs 1 and --jobs 4"
    );
    let stderr = String::from_utf8_lossy(&parallel.stderr);
    assert!(
        stderr.contains("timing (4 workers):") && stderr.contains("total"),
        "missing timing table on stderr: {stderr}"
    );
}

#[test]
fn recording_leaves_stdout_byte_identical() {
    // The observability layer's stdout contract: turning the recorder
    // on (--trace-out/--metrics-out) must not move a single stdout
    // byte — recording writes only to the named files and stderr.
    let tmp = std::env::temp_dir();
    let trace = tmp.join(format!("harvest-obs-trace-{}.json", std::process::id()));
    let metrics = tmp.join(format!("harvest-obs-metrics-{}.json", std::process::id()));

    let off = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig7", "fig8", "--jobs", "2"])
        .output()
        .expect("repro runs");
    assert!(off.status.success(), "recorder-off run failed");
    let on = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig7", "fig8", "--jobs", "2"])
        .args(["--trace-out".as_ref(), trace.as_os_str()])
        .args(["--metrics-out".as_ref(), metrics.as_os_str()])
        .output()
        .expect("repro runs");
    assert!(on.status.success(), "recorder-on run failed");
    assert_eq!(
        off.stdout, on.stdout,
        "recording changed repro's stdout bytes"
    );

    // Both exports exist and parse with the in-repo JSON parser.
    let trace_text = std::fs::read_to_string(&trace).expect("trace file written");
    let trace_json = harvest_sim::obs::json::parse(&trace_text).expect("trace parses");
    assert!(
        trace_json
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .is_some_and(|evs| !evs.is_empty()),
        "trace has no events"
    );
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics file written");
    let metrics_json = harvest_sim::obs::json::parse(&metrics_text).expect("metrics parses");
    assert!(
        metrics_json.get("counters").is_some(),
        "metrics report lacks counters"
    );

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&metrics);
}

/// Crash-safe checkpoint/resume: journal a run, cut the journal to a
/// prefix ending mid-line (what a SIGKILL during a write leaves
/// behind), resume at a different thread count, and the final stdout is
/// byte-identical to a run that was never interrupted.
#[test]
fn killed_and_resumed_stdout_is_byte_identical() {
    let journal =
        std::env::temp_dir().join(format!("harvest-resume-{}.journal", std::process::id()));
    let journal = journal.to_str().expect("utf-8 temp path");
    let run = |args: &[&str]| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .output()
            .expect("repro runs");
        assert!(
            out.status.success(),
            "repro {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out
    };
    let clean = run(&["fig15", "--jobs", "4"]);
    run(&["fig15", "--jobs", "4", "--checkpoint", journal]);

    // "Kill" the journaling run: keep a prefix that ends mid-line —
    // a little past a line boundary, so the tail is a torn write.
    let bytes = std::fs::read(journal).expect("journal written");
    assert!(bytes.len() > 200, "journal suspiciously small");
    let boundaries: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect();
    let cut = boundaries[boundaries.len() * 3 / 5] + 10;
    std::fs::write(journal, &bytes[..cut]).expect("truncate journal");

    let resumed = run(&[
        "fig15",
        "--jobs",
        "2",
        "--checkpoint",
        journal,
        "--resume",
        journal,
    ]);
    assert_eq!(
        clean.stdout, resumed.stdout,
        "resumed stdout differs from an uninterrupted run"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("results restored") && !stderr.contains("[resume: 0 results"),
        "resume restored nothing: {stderr}"
    );
    assert!(
        stderr.contains("torn lines dropped"),
        "mid-line cut not reported as torn: {stderr}"
    );
    let _ = std::fs::remove_file(journal);
}

/// Panic isolation at the binary level: force one sweep task to panic
/// and only its table cell degrades — every other line of the report is
/// unchanged (modulo column re-padding) and the report names the
/// quarantined task.
#[test]
fn quarantined_task_degrades_only_its_cell() {
    let run = |forced: Option<&str>| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.args(["fig7", "--jobs", "2"]);
        match forced {
            Some(key) => cmd.env("HARVEST_FORCE_PANIC", key),
            None => cmd.env_remove("HARVEST_FORCE_PANIC"),
        };
        let out = cmd.output().expect("repro runs");
        assert!(out.status.success(), "repro failed");
        String::from_utf8(out.stdout).expect("utf-8 report")
    };
    let clean = run(None);
    let forced = run(Some("fig7/lv1"));
    assert!(
        forced.contains("`fig7/lv1` quarantined after"),
        "missing quarantine note:\n{forced}"
    );
    assert!(forced.contains("(quarantined)"), "missing placeholder row");

    // Every line except the quarantined row and the harness note is
    // unchanged (columns may re-pad around the placeholder).
    let normalize = |text: &str| -> Vec<String> {
        text.lines()
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .filter(|l| !l.is_empty())
            .filter(|l| !l.starts_with("| 1 |") && !l.contains("quarantined"))
            .collect()
    };
    assert_eq!(
        normalize(&clean),
        normalize(&forced),
        "a healthy row changed alongside the quarantine"
    );
}

/// Malformed invocations die fast with a one-line error and a nonzero
/// exit, before any experiment burns time.
#[test]
fn bad_arguments_fail_fast() {
    let run = |args: &[&str]| {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .output()
            .expect("repro runs");
        assert!(
            !out.status.success(),
            "repro {args:?} unexpectedly succeeded"
        );
        assert!(out.stdout.is_empty(), "error path wrote to stdout");
        let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "want one-line error, got: {stderr}"
        );
        stderr
    };
    assert!(run(&["--jobs", "0", "fig7"]).contains("--jobs requires an integer >= 1"));
    assert!(run(&["--jobs", "x", "fig7"]).contains("--jobs requires an integer >= 1"));
    assert!(run(&["--task-deadline", "0", "fig7"]).contains("--task-deadline requires"));
    assert!(run(&["--resume", "/nonexistent/dir/x.journal", "fig7"])
        .contains("error: cannot read resume journal"));

    let corrupt =
        std::env::temp_dir().join(format!("harvest-corrupt-{}.journal", std::process::id()));
    std::fs::write(&corrupt, "not a journal line\nalso not one\n").expect("write corrupt file");
    let stderr = run(&["--resume", corrupt.to_str().expect("utf-8"), "fig7"]);
    assert!(
        stderr.contains("error: corrupt resume journal"),
        "corrupt journal not rejected: {stderr}"
    );
    let _ = std::fs::remove_file(&corrupt);
}
