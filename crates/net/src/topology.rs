//! The fabric's link graph, derived from a datacenter's rack layout.

use harvest_cluster::datacenter::RACK_SIZE;
use harvest_cluster::{Datacenter, ServerId};

use crate::config::NetworkConfig;

/// Identifies a directed link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// The (at most four) links a flow traverses, inline — the hierarchical
/// topology never produces longer paths, so the fabric's hot path can
/// carry one of these per flow without a heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    links: [LinkId; 4],
    len: u8,
}

impl Path {
    fn new(links: &[LinkId]) -> Self {
        debug_assert!(links.len() <= 4, "paths are at most 4 hops");
        let mut buf = [LinkId(0); 4];
        buf[..links.len()].copy_from_slice(links);
        Path {
            links: buf,
            len: links.len() as u8,
        }
    }

    /// The links, in traversal order.
    pub fn as_slice(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }

    /// Number of hops (0 for a local copy).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the path is empty (source and destination coincide).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Path {
    type Target = [LinkId];

    fn deref(&self) -> &[LinkId] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a LinkId;
    type IntoIter = std::slice::Iter<'a, LinkId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// The hierarchical topology: every server hangs off its rack's ToR
/// switch through a full-duplex NIC link, and every ToR reaches the
/// (non-blocking) aggregation/core tier through an oversubscribed uplink
/// pair.
///
/// Links are directed. Layout, for `n` servers and `r` racks:
///
/// * `[0, n)` — server transmit (server → ToR);
/// * `[n, 2n)` — server receive (ToR → server);
/// * `[2n, 2n + r)` — rack uplink (ToR → core);
/// * `[2n + r, 2n + 2r)` — rack downlink (core → ToR).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Per-link capacity in bytes per second.
    capacity: Vec<f64>,
    /// Rack of each server.
    rack_of: Vec<u32>,
    n_servers: u32,
    n_racks: u32,
    /// Fixed per-hop latency.
    hop_latency_ms: f64,
}

impl Topology {
    /// Builds the fabric for `dc` under `config`.
    ///
    /// Rack membership comes from the datacenter's own layout
    /// ([`harvest_cluster::Server::rack`]); rack uplink capacity is
    /// `RACK_SIZE * nic / oversubscription` regardless of how full the
    /// last rack is, as real ToRs are provisioned for full racks.
    ///
    /// # Panics
    ///
    /// Panics if the datacenter has no servers or the config is invalid.
    pub fn from_datacenter(dc: &Datacenter, config: &NetworkConfig) -> Self {
        config.validate();
        let n = dc.n_servers() as u32;
        assert!(n > 0, "cannot build a fabric over zero servers");
        let r = dc.n_racks() as u32;
        let nic = config.nic_bytes_per_sec();
        let uplink = nic * RACK_SIZE as f64 / config.oversubscription;

        let mut capacity = Vec::with_capacity((2 * n + 2 * r) as usize);
        capacity.extend(std::iter::repeat_n(nic, 2 * n as usize));
        capacity.extend(std::iter::repeat_n(uplink, 2 * r as usize));

        Topology {
            capacity,
            rack_of: dc.servers.iter().map(|s| s.rack.0).collect(),
            n_servers: n,
            n_racks: r,
            hop_latency_ms: config.hop_latency_ms,
        }
    }

    /// A synthetic topology of `n_servers` in full racks of
    /// [`RACK_SIZE`], without generating a [`Datacenter`] (no tenants,
    /// no utilization traces). Link layout and capacities are identical
    /// to [`Topology::from_datacenter`] over a datacenter of the same
    /// size — this is how the benches build unscaled DC-sized fabrics
    /// cheaply.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers` is zero or the config is invalid.
    pub fn synthetic(n_servers: usize, config: &NetworkConfig) -> Self {
        config.validate();
        assert!(n_servers > 0, "cannot build a fabric over zero servers");
        let n = n_servers as u32;
        let r = n.div_ceil(RACK_SIZE);
        let nic = config.nic_bytes_per_sec();
        let uplink = nic * RACK_SIZE as f64 / config.oversubscription;

        let mut capacity = Vec::with_capacity((2 * n + 2 * r) as usize);
        capacity.extend(std::iter::repeat_n(nic, 2 * n as usize));
        capacity.extend(std::iter::repeat_n(uplink, 2 * r as usize));

        Topology {
            capacity,
            rack_of: (0..n).map(|s| s / RACK_SIZE).collect(),
            n_servers: n,
            n_racks: r,
            hop_latency_ms: config.hop_latency_ms,
        }
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.n_servers as usize
    }

    /// Number of racks.
    pub fn n_racks(&self) -> usize {
        self.n_racks as usize
    }

    /// Number of directed links.
    pub fn n_links(&self) -> usize {
        self.capacity.len()
    }

    /// Capacity of a link in bytes per second.
    pub fn capacity(&self, link: LinkId) -> f64 {
        self.capacity[link.0 as usize]
    }

    /// The rack a server sits in.
    pub fn rack_of(&self, server: ServerId) -> u32 {
        self.rack_of[server.0 as usize]
    }

    /// The server's transmit link (server → ToR).
    pub fn server_tx(&self, server: ServerId) -> LinkId {
        LinkId(server.0)
    }

    /// The server's receive link (ToR → server).
    pub fn server_rx(&self, server: ServerId) -> LinkId {
        LinkId(self.n_servers + server.0)
    }

    /// A rack's uplink (ToR → core).
    pub fn rack_up(&self, rack: u32) -> LinkId {
        LinkId(2 * self.n_servers + rack)
    }

    /// A rack's downlink (core → ToR).
    pub fn rack_down(&self, rack: u32) -> LinkId {
        LinkId(2 * self.n_servers + self.n_racks + rack)
    }

    /// The directed path a `src → dst` flow traverses. Empty when source
    /// and destination are the same server (a local copy never touches
    /// the fabric); two links within a rack; four links across racks.
    pub fn path(&self, src: ServerId, dst: ServerId) -> Vec<LinkId> {
        self.path_links(src, dst).as_slice().to_vec()
    }

    /// Allocation-free variant of [`Topology::path`] for hot paths: the
    /// fabric stores one [`Path`] per flow and builds its inverted
    /// link → flows index from it.
    pub fn path_links(&self, src: ServerId, dst: ServerId) -> Path {
        if src == dst {
            return Path::new(&[]);
        }
        let (sr, dr) = (self.rack_of(src), self.rack_of(dst));
        if sr == dr {
            Path::new(&[self.server_tx(src), self.server_rx(dst)])
        } else {
            Path::new(&[
                self.server_tx(src),
                self.rack_up(sr),
                self.rack_down(dr),
                self.server_rx(dst),
            ])
        }
    }

    /// The bottleneck capacity of the `src → dst` path in bytes/s
    /// (`f64::INFINITY` for a local copy).
    pub fn path_capacity(&self, src: ServerId, dst: ServerId) -> f64 {
        self.path(src, dst)
            .into_iter()
            .map(|l| self.capacity(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Transfer time of `bytes` over an otherwise-idle fabric, in
    /// seconds: bandwidth term plus per-hop latency. This is the static
    /// estimate consumers use when they only need a latency, not
    /// contention (e.g. scoring a remote read). Allocation-free — it is
    /// called once per simulated read in hot loops.
    pub fn idle_transfer_secs(&self, src: ServerId, dst: ServerId, bytes: u64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let (sr, dr) = (self.rack_of(src), self.rack_of(dst));
        let mut bw = self
            .capacity(self.server_tx(src))
            .min(self.capacity(self.server_rx(dst)));
        let hops = if sr == dr {
            2.0
        } else {
            bw = bw
                .min(self.capacity(self.rack_up(sr)))
                .min(self.capacity(self.rack_down(dr)));
            4.0
        };
        bytes as f64 / bw + hops * self.hop_latency_ms / 1_000.0
    }

    /// An upper bound on [`Topology::idle_transfer_secs`] for `bytes`
    /// over any server pair: the slowest link in the fabric plus the
    /// full four-hop path. Used to size latency histograms.
    pub fn max_idle_transfer_secs(&self, bytes: u64) -> f64 {
        let min_bw = self.capacity.iter().copied().fold(f64::INFINITY, f64::min);
        bytes as f64 / min_bw + 4.0 * self.hop_latency_ms / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn topo() -> (Datacenter, Topology) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);
        let t = Topology::from_datacenter(&dc, &NetworkConfig::datacenter());
        (dc, t)
    }

    #[test]
    fn link_layout_covers_everything() {
        let (dc, t) = topo();
        assert_eq!(t.n_servers(), dc.n_servers());
        assert_eq!(t.n_racks(), dc.n_racks());
        assert_eq!(t.n_links(), 2 * dc.n_servers() + 2 * dc.n_racks());
        // Every helper returns a distinct in-range link.
        let mut seen = std::collections::HashSet::new();
        for s in 0..dc.n_servers() as u32 {
            assert!(seen.insert(t.server_tx(ServerId(s))));
            assert!(seen.insert(t.server_rx(ServerId(s))));
        }
        for r in 0..dc.n_racks() as u32 {
            assert!(seen.insert(t.rack_up(r)));
            assert!(seen.insert(t.rack_down(r)));
        }
        assert_eq!(seen.len(), t.n_links());
        assert!(seen.iter().all(|l| (l.0 as usize) < t.n_links()));
    }

    #[test]
    fn paths_follow_the_hierarchy() {
        let (dc, t) = topo();
        // Same server: no fabric.
        assert!(t.path(ServerId(0), ServerId(0)).is_empty());
        // Same rack: two links.
        let same_rack = dc
            .servers
            .iter()
            .find(|s| s.id.0 != 0 && s.rack == dc.servers[0].rack)
            .expect("rack has a second server");
        assert_eq!(t.path(ServerId(0), same_rack.id).len(), 2);
        // Cross rack: four links, including both rack links.
        let other_rack = dc
            .servers
            .iter()
            .find(|s| s.rack != dc.servers[0].rack)
            .expect("dc has a second rack");
        let path = t.path(ServerId(0), other_rack.id);
        assert_eq!(path.len(), 4);
        assert!(path.contains(&t.rack_up(t.rack_of(ServerId(0)))));
        assert!(path.contains(&t.rack_down(t.rack_of(other_rack.id))));
    }

    #[test]
    fn synthetic_matches_datacenter_layout() {
        let (dc, t) = topo();
        let s = Topology::synthetic(dc.n_servers(), &NetworkConfig::datacenter());
        assert_eq!(s.n_servers(), t.n_servers());
        // Rack count can differ by partial trailing racks, but link
        // capacities and path shapes agree for any server pair.
        let a = ServerId(0);
        let b = ServerId(dc.n_servers() as u32 - 1);
        assert_eq!(s.path(a, b).len(), 4);
        assert_eq!(s.capacity(s.server_tx(a)), t.capacity(t.server_tx(a)));
        assert_eq!(s.capacity(s.rack_up(0)), t.capacity(t.rack_up(0)));
        assert_eq!(s.path_capacity(a, b), t.path_capacity(a, b));
    }

    #[test]
    fn path_links_agrees_with_path() {
        let (dc, t) = topo();
        for (i, j) in [(0usize, 0usize), (0, 1), (0, dc.n_servers() - 1)] {
            let a = ServerId(i as u32);
            let b = ServerId(j as u32);
            assert_eq!(t.path(a, b), t.path_links(a, b).as_slice().to_vec());
        }
    }

    #[test]
    fn oversubscription_shrinks_uplinks() {
        let (dc, _) = topo();
        let tight = Topology::from_datacenter(
            &dc,
            &NetworkConfig {
                oversubscription: 8.0,
                ..NetworkConfig::datacenter()
            },
        );
        let loose = Topology::from_datacenter(&dc, &NetworkConfig::non_blocking());
        assert!(tight.capacity(tight.rack_up(0)) < loose.capacity(loose.rack_up(0)));
        // NICs are unaffected by oversubscription.
        assert_eq!(
            tight.capacity(tight.server_tx(ServerId(0))),
            loose.capacity(loose.server_tx(ServerId(0)))
        );
    }

    #[test]
    fn idle_transfer_times_are_ordered_by_distance() {
        let (dc, t) = topo();
        let same_rack = dc
            .servers
            .iter()
            .find(|s| s.id.0 != 0 && s.rack == dc.servers[0].rack)
            .unwrap()
            .id;
        let other_rack = dc
            .servers
            .iter()
            .find(|s| s.rack != dc.servers[0].rack)
            .unwrap()
            .id;
        let bytes = 256 * 1024 * 1024;
        let local = t.idle_transfer_secs(ServerId(0), ServerId(0), bytes);
        let rack = t.idle_transfer_secs(ServerId(0), same_rack, bytes);
        let cross = t.idle_transfer_secs(ServerId(0), other_rack, bytes);
        assert_eq!(local, 0.0);
        assert!(rack > 0.0);
        assert!(cross > rack, "cross-rack {cross} <= in-rack {rack}");
        // 256 MB at 10 Gb/s is ~0.21 s.
        assert!((0.2..0.3).contains(&rack), "in-rack transfer {rack}s");
    }
}
