//! The availability simulation (Figure 16).
//!
//! A block access fails when *every* replica sits on a server whose
//! primary CPU utilization exceeds the busy threshold (2/3 — §6.4:
//! "accesses cannot proceed if CPU utilization is higher than 66%").
//! Placement diversity across peak-utilization rows is what keeps at
//! least one replica reachable as utilization scales up.

use harvest_cluster::reserve::is_busy;
use harvest_cluster::{Datacenter, ServerId, UtilizationView};
use harvest_sim::rng::stream_rng;
use harvest_sim::{dist, SimDuration, SimTime};
use rand::RngExt;

use crate::placement::{Placer, PlacementPolicy};
use crate::store::{BlockId, BlockStore};

/// Availability-simulation parameters.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Placement policy under test.
    pub policy: PlacementPolicy,
    /// Replicas per block.
    pub replication: usize,
    /// Fraction of harvestable space filled with blocks.
    pub fill_fraction: f64,
    /// Simulated span (the paper uses one month).
    pub span: SimDuration,
    /// Mean block accesses per second across the cluster.
    pub accesses_per_second: f64,
    /// Master seed.
    pub seed: u64,
}

impl AvailabilityConfig {
    /// The paper's one-month setup.
    pub fn paper(policy: PlacementPolicy, replication: usize, seed: u64) -> Self {
        AvailabilityConfig {
            policy,
            replication,
            fill_fraction: 0.5,
            span: SimDuration::from_days(30),
            accesses_per_second: 10.0,
            seed,
        }
    }
}

/// Outcome of an availability simulation.
#[derive(Debug, Clone)]
pub struct AvailabilityResult {
    /// Blocks placed.
    pub n_blocks: u64,
    /// Total accesses attempted.
    pub accesses: u64,
    /// Accesses that found every replica busy.
    pub failed: u64,
    /// Percentage of failed accesses (Figure 16's y-axis).
    pub failed_percent: f64,
    /// Mean fleet utilization of the view (Figure 16's x-axis).
    pub mean_utilization: f64,
}

/// Runs the availability simulation.
pub fn simulate_availability(
    dc: &Datacenter,
    view: &UtilizationView,
    cfg: &AvailabilityConfig,
) -> AvailabilityResult {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "availability");
    let n_servers = dc.n_servers();

    // Place blocks with the busy mask of time zero (creation-time
    // awareness for PT/H; Stock ignores the mask internally).
    let busy0 = busy_mask(dc, view, SimTime::ZERO);
    let capacity = dc.total_harvest_blocks();
    let target = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let mut n_blocks = 0u64;
    for _ in 0..target {
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, Some(&busy0)) {
            Some(p) => {
                store.create_block(&p.servers);
                n_blocks += 1;
            }
            None => break,
        }
    }

    // Replay a month of accesses on the two-minute utilization grid.
    let tick = harvest_trace::SAMPLE_INTERVAL;
    let accesses_per_tick = cfg.accesses_per_second * tick.as_secs_f64();
    let n_ticks = cfg.span.div_duration(tick);
    let mut accesses = 0u64;
    let mut failed = 0u64;
    for k in 0..n_ticks {
        let now = SimTime::ZERO + tick.mul_f64(k as f64);
        let busy = busy_mask(dc, view, now);
        let n_acc = dist::poisson(&mut rng, accesses_per_tick);
        for _ in 0..n_acc {
            let block = BlockId(rng.random_range(0..n_blocks));
            accesses += 1;
            let all_busy = store
                .replicas(block)
                .iter()
                .all(|&s| busy[s as usize]);
            if all_busy {
                failed += 1;
            }
        }
    }

    AvailabilityResult {
        n_blocks,
        accesses,
        failed,
        failed_percent: if accesses == 0 {
            0.0
        } else {
            failed as f64 / accesses as f64 * 100.0
        },
        mean_utilization: view.mean_fleet_util(),
    }
}

/// The busy mask at an instant: true for servers denying accesses.
pub fn busy_mask(dc: &Datacenter, view: &UtilizationView, now: SimTime) -> Vec<bool> {
    (0..dc.n_servers())
        .map(|s| is_busy(view.server_util(ServerId(s as u32), now)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;
    use harvest_trace::scaling::{calibrate, ScalingKind};

    fn setup(target_util: f64) -> (Datacenter, UtilizationView) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 31);
        let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
        let factor = calibrate(&traces, ScalingKind::Linear, target_util);
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, factor);
        (dc, view)
    }

    fn run(policy: PlacementPolicy, util: f64, replication: usize) -> AvailabilityResult {
        let (dc, view) = setup(util);
        let mut cfg = AvailabilityConfig::paper(policy, replication, 7);
        cfg.span = SimDuration::from_days(3);
        cfg.accesses_per_second = 5.0;
        simulate_availability(&dc, &view, &cfg)
    }

    #[test]
    fn low_utilization_has_no_failures() {
        for policy in PlacementPolicy::ALL {
            let r = run(policy, 0.25, 3);
            assert_eq!(r.failed, 0, "{policy} failed accesses at 25% util");
        }
    }

    #[test]
    fn high_utilization_fails_stock_first() {
        let stock = run(PlacementPolicy::Stock, 0.55, 3);
        let hist = run(PlacementPolicy::History, 0.55, 3);
        assert!(
            hist.failed_percent <= stock.failed_percent,
            "HDFS-H ({}) worse than Stock ({})",
            hist.failed_percent,
            stock.failed_percent
        );
    }

    #[test]
    fn extra_replication_reduces_failures() {
        let r3 = run(PlacementPolicy::Stock, 0.6, 3);
        let r4 = run(PlacementPolicy::Stock, 0.6, 4);
        assert!(
            r4.failed_percent <= r3.failed_percent,
            "R=4 ({}) worse than R=3 ({})",
            r4.failed_percent,
            r3.failed_percent
        );
    }

    #[test]
    fn accesses_follow_configured_rate() {
        let r = run(PlacementPolicy::Stock, 0.4, 3);
        let expected = 5.0 * 3.0 * 86_400.0;
        let ratio = r.accesses as f64 / expected;
        assert!((0.95..1.05).contains(&ratio), "accesses off: {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(PlacementPolicy::History, 0.5, 3);
        let b = run(PlacementPolicy::History, 0.5, 3);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.accesses, b.accesses);
    }
}
