//! Benchmarks for the §3 characterization pipeline (Figures 1–6): trace
//! generation, FFT classification, K-Means, and reimage analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_signal::classify::{classify, ClassifierConfig};
use harvest_signal::features::{normalize_features, TraceFeatures};
use harvest_signal::fft::fft_real_padded;
use harvest_signal::kmeans::kmeans;
use harvest_signal::spectrum::periodicity_strength;
use harvest_sim::rng::stream_rng;
use harvest_trace::datacenter::DatacenterProfile;
use harvest_trace::reimage::{group_changes, TenantReimageModel};
use harvest_trace::SAMPLES_PER_MONTH;
use std::hint::black_box;

fn month_trace() -> Vec<f64> {
    let profile = DatacenterProfile::dc(9);
    let tenants = profile.sample_tenants(42);
    let mut rng = stream_rng(42, "bench-trace");
    tenants[0]
        .util
        .generate(&mut rng, SAMPLES_PER_MONTH)
        .values()
        .to_vec()
}

fn bench_characterization(c: &mut Criterion) {
    let trace = month_trace();

    // Figure 1: the FFT over a month of two-minute samples.
    c.bench_function("fig1_fft_month_trace", |b| {
        b.iter(|| black_box(fft_real_padded(black_box(&trace))))
    });
    c.bench_function("fig1_periodicity_strength", |b| {
        b.iter(|| black_box(periodicity_strength(black_box(&trace), 720.0)))
    });

    // Figures 2-3: the three-way classifier.
    let config = ClassifierConfig::default();
    c.bench_function("fig2_classify_tenant", |b| {
        b.iter(|| black_box(classify(black_box(&trace), &config)))
    });

    // The K-Means half of the clustering service.
    let features: Vec<Vec<f64>> = (0..120)
        .map(|i| {
            let shifted: Vec<f64> = trace.iter().map(|v| (v + i as f64 * 0.002) % 1.0).collect();
            TraceFeatures::extract(&shifted, 720.0).to_vec()
        })
        .collect();
    let normalized = normalize_features(&features);
    c.bench_function("fig2_kmeans_120_tenants_k13", |b| {
        b.iter(|| {
            let mut rng = stream_rng(1, "bench-kmeans");
            black_box(kmeans(&mut rng, black_box(&normalized), 13, 50))
        })
    });

    // Figures 4-6: a year of reimages for a 100-server tenant.
    let model = TenantReimageModel {
        base_rate: 0.3,
        redeploys_per_month: 0.2,
        redeploy_fraction: (0.3, 0.9),
        rate_drift_sigma: 0.15,
    };
    c.bench_function("fig4_reimage_year_100_servers", |b| {
        b.iter(|| {
            let mut rng = stream_rng(2, "bench-reimage");
            black_box(model.generate(&mut rng, 100, 12))
        })
    });

    // Figure 6: group-change analysis over 36 months x 200 tenants.
    let monthly: Vec<Vec<f64>> = (0..36)
        .map(|m| {
            (0..200)
                .map(|t| ((t * 7 + m) % 100) as f64 / 100.0)
                .collect()
        })
        .collect();
    c.bench_function("fig6_group_changes_36_months", |b| {
        b.iter(|| black_box(group_changes(black_box(&monthly))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_characterization
}
criterion_main!(benches);
