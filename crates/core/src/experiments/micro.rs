//! §6.2 performance microbenchmarks.
//!
//! "For task scheduling, clustering takes on average 2 minutes for the
//! primary tenants of DC-9, when running single-threaded. … The
//! clustering produces 23 classes (13 periodic, 5 constant, and 5
//! unpredictable) for DC-9. For this datacenter, class selection takes
//! less than 1 msec on average. For data placement, clustering and class
//! selection take on average 2.55 msecs per new block (0.81 msecs in
//! HDFS-Stock)."

use std::time::Instant;

use harvest_cluster::{Datacenter, ServerId, UtilizationView};
use harvest_dfs::placement::{PlacementPolicy, Placer};
use harvest_dfs::store::BlockStore;
use harvest_jobs::length::JobLength;
use harvest_sched::classes::ClusteringService;
use harvest_sched::headroom::RankingWeights;
use harvest_sched::select::select_classes;
use harvest_signal::classify::UtilizationPattern;
use harvest_sim::rng::stream_rng;
use harvest_trace::datacenter::DatacenterProfile;
use rand::RngExt;

use crate::report::{num, Table};
use crate::scale::Scale;

/// §6.2 microbenchmarks: clustering, class selection, and per-block
/// placement timings for a DC-9-like input.
pub fn micro(scale: &Scale) -> String {
    let profile = DatacenterProfile::dc(9).scaled(scale.dc_scale.max(0.1));
    let dc = Datacenter::generate(&profile, scale.seed);
    let view = UtilizationView::unscaled(&dc);

    let mut table = Table::new(
        format!(
            "§6.2 microbenchmarks (DC-9 at {} tenants / {} servers)",
            dc.n_tenants(),
            dc.n_servers()
        ),
        &["operation", "measured", "paper (full DC-9)"],
    );

    // Clustering (the daily, off-critical-path job).
    let t0 = Instant::now();
    let svc = ClusteringService::build(&dc, scale.seed);
    let clustering = t0.elapsed();
    table.row(&[
        "scheduling clustering (total)".into(),
        format!("{:.1} ms", clustering.as_secs_f64() * 1e3),
        "~2 minutes".into(),
    ]);
    let classes = format!(
        "{} classes ({} periodic, {} constant, {} unpredictable)",
        svc.class_count(),
        svc.count_by_pattern(UtilizationPattern::Periodic),
        svc.count_by_pattern(UtilizationPattern::Constant),
        svc.count_by_pattern(UtilizationPattern::Unpredictable),
    );
    table.row(&[
        "clustering output".into(),
        classes,
        "23 classes (13 periodic, 5 constant, 5 unpredictable)".into(),
    ]);

    // Class selection (Algorithm 1).
    let mut rng = stream_rng(scale.seed, "micro-select");
    let utils: Vec<f64> = svc
        .classes()
        .iter()
        .map(|c| {
            let mut sum = 0.0;
            let mut n = 0usize;
            for &tid in &c.tenants {
                let t = dc.tenant(tid);
                sum += view.tenant_util(tid, harvest_sim::SimTime::ZERO) * t.n_servers() as f64;
                n += t.n_servers();
            }
            sum / n.max(1) as f64
        })
        .collect();
    let weights = RankingWeights::paper();
    let iters = 10_000;
    let t0 = Instant::now();
    for i in 0..iters {
        let length = match i % 3 {
            0 => JobLength::Short,
            1 => JobLength::Medium,
            _ => JobLength::Long,
        };
        let _ = select_classes(&mut rng, &svc, &weights, length, 64, &utils);
    }
    let select_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    table.row(&[
        "class selection (per job)".into(),
        format!("{} us", num(select_us, 1)),
        "< 1 ms".into(),
    ]);

    // Replica placement per new block: HDFS-H vs HDFS-Stock.
    for (policy, paper) in [
        (PlacementPolicy::History, "2.55 ms/block"),
        (PlacementPolicy::Stock, "0.81 ms/block"),
    ] {
        let placer = Placer::new(&dc, policy);
        let mut store = BlockStore::new(&dc);
        let mut rng = stream_rng(scale.seed, "micro-place");
        let blocks = 20_000u32;
        let t0 = Instant::now();
        for _ in 0..blocks {
            let writer = ServerId(rng.random_range(0..dc.n_servers()) as u32);
            if let Some(p) = placer.place_new(&mut rng, &store, writer, 3, None) {
                store.create_block(&p.servers);
            }
        }
        let per_block_us = t0.elapsed().as_secs_f64() * 1e6 / blocks as f64;
        table.row(&[
            format!("{policy} placement (per block)"),
            format!("{} us", num(per_block_us, 2)),
            paper.into(),
        ]);
    }

    table.note("absolute times differ (language, hardware, cluster size); the shape to check is clustering >> placement > selection, and HDFS-H placement costing a small constant factor over Stock");
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_runs_and_reports() {
        let mut s = Scale::quick();
        s.dc_scale = 0.05;
        let out = micro(&s);
        assert!(out.contains("class selection"));
        assert!(out.contains("HDFS-H"));
        assert!(out.contains("HDFS-Stock"));
    }
}
