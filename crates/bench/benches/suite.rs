//! Experiment-suite fan-out bench: the quick-scale durability + sched
//! sweeps (fig15 + fig13, the two widest task matrices in `repro`) at
//! one worker vs. all of them.
//!
//! After PRs 3/4 made single-simulation hot paths incremental, suite
//! wall clock is dominated by the embarrassingly-parallel sweep matrix
//! that `harvest_sim::par::par_map` now fans out. This bench times the
//! sequential reference path (`jobs = 1`) against the parallel harness
//! (`jobs = available cores`) on the same experiments and asserts the
//! rendered reports are *byte-identical* — the determinism contract the
//! speedup must never buy anything with.
//!
//! Modes:
//! * default — times both paths best-of-two (a one-shot timing on a
//!   shared box can swing past the 1.05x supervision gate below on
//!   noise alone) and (re)writes `BENCH_suite.json` at the workspace root
//!   with the machine's core count next to the measured speedup. The
//!   issue's acceptance bar is ≥ 3× for the sweep on a ≥ 4-core
//!   machine; on fewer cores the JSON records what the hardware can
//!   show (a 1-core machine records ~1×: the harness is overhead-free,
//!   not magic).
//! * `SUITE_SMOKE=1` — a reduced slice of the same sweeps sized for
//!   CI's 2-core runner under `timeout 300`, asserting byte-identical
//!   reports always, and a machine-independent ≥ 1.5× floor whenever
//!   ≥ 2 cores are actually available (both paths share the machine,
//!   so the floor does not depend on absolute speed). Each path is
//!   timed best-of-two so a single noisy-neighbor episode on the
//!   shared runner cannot flake the ratio (the sched_tick smoke's
//!   lesson).

use std::time::Instant;

use harvest_core::{run_experiment, Scale};
use harvest_sim::par::default_jobs;

/// The recorded sequential baseline out of a previous `BENCH_suite.json`,
/// if the file exists and parses.
fn suite_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"sequential_secs\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

/// The suite slice under test: the two widest sweep matrices.
const EXPERIMENTS: [&str; 2] = ["fig15", "fig13"];

fn scale(jobs: usize, smoke: bool) -> Scale {
    let mut s = Scale::quick();
    s.jobs = jobs;
    if smoke {
        // A slice of the quick sweep that still fans out plenty of
        // tasks (10 DCs × 4 cells × 2 runs for fig15; 2 scalings × 2
        // runs for fig13) but fits CI's compile + run budget twice.
        s.runs = 2;
        s.sched_hours = 4;
        s.durability_months = 3;
        s.utilizations = vec![0.45];
    }
    s
}

/// Runs the suite slice, returning (wall seconds, rendered reports).
fn run_suite(scale: &Scale) -> (f64, Vec<String>) {
    let t0 = Instant::now();
    let reports: Vec<String> = EXPERIMENTS
        .iter()
        .map(|id| run_experiment(id, scale).expect("experiment runs"))
        .collect();
    (t0.elapsed().as_secs_f64(), reports)
}

fn main() {
    let cores = default_jobs();
    let smoke = std::env::var_os("SUITE_SMOKE").is_some();
    println!(
        "suite bench: {} at quick scale{}, 1 worker vs {cores}",
        EXPERIMENTS.join("+"),
        if smoke { " (smoke slice)" } else { "" },
    );

    // Best of two passes per path: asserts ride on both modes now (the
    // smoke floor and the recorded-baseline 1.05x gate), and a single
    // noisy-neighbor episode on a shared box swings a one-shot timing
    // by more than the margin either assert leaves.
    let iters = 2;
    let best = |jobs: usize| -> (f64, Vec<String>) {
        (0..iters)
            .map(|_| run_suite(&scale(jobs, smoke)))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("iters >= 1")
    };
    let (seq_secs, seq_reports) = best(1);
    println!("bench suite/sequential (1 worker)           {seq_secs:>10.3}s");
    let (par_secs, par_reports) = best(cores);
    println!("bench suite/parallel ({cores} workers)          {par_secs:>10.3}s");
    let speedup = seq_secs / par_secs;
    println!("bench suite/speedup                         {speedup:>10.2}x");

    // The determinism contract: identical sweep outcomes, byte for byte.
    assert_eq!(
        seq_reports, par_reports,
        "suite reports differ between 1 worker and {cores}"
    );
    for report in &seq_reports {
        assert!(report.contains("Figure"), "suite produced an empty report");
    }

    if smoke {
        // Machine-independent floor, only meaningful when the machine
        // can actually run two workers at once.
        let floor = 1.5;
        if cores >= 2 {
            assert!(
                speedup >= floor,
                "parallel suite only {speedup:.2}x faster than sequential on {cores} cores \
                 (floor {floor}x) — the sweep matrix has regressed toward serial execution"
            );
        } else {
            println!("single-core machine: skipping the {floor}x floor assert");
        }
        return;
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_suite.json");
    // Supervision-off guard: the sweeps now run under the resilience
    // harness (watchdog + catch_unwind per task) with checkpointing and
    // deadlines off — that must cost at most 5% against the baseline
    // recorded before this run overwrites it.
    match suite_baseline(path) {
        Some(b) => {
            let ratio = seq_secs / b;
            println!("bench suite/sequential vs recorded baseline: {ratio:.3}x");
            assert!(
                ratio <= 1.05,
                "supervised sweep is {ratio:.3}x the recorded sequential baseline \
                 ({seq_secs:.3}s vs {b:.3}s) — supervision with checkpointing off must be \
                 within 5% (stale baseline from another machine? re-record and re-run)"
            );
        }
        None => {
            println!("no BENCH_suite.json baseline to compare against; skipping the 1.05x gate")
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"suite\",\n  \"workload\": \"repro {} at quick scale (the durability and scheduling sweep matrices)\",\n  \"cores\": {cores},\n  \"suite\": {{ \"sequential_secs\": {seq_secs:.3}, \"parallel_secs\": {par_secs:.3}, \"speedup\": {speedup:.2} }},\n  \"note\": \"speedup scales with cores (acceptance bar: >= 3x on a >= 4-core machine); reports asserted byte-identical across worker counts; sequential path gated at <= 1.05x the previous recording (supervision harness must stay free when checkpointing is off)\"\n}}\n",
        EXPERIMENTS.join(" "),
    );
    std::fs::write(path, &json).expect("write BENCH_suite.json");
    println!("wrote {path}");
}
