//! Deterministic discrete-event queue.
//!
//! [`EventQueue`] is a priority queue keyed on [`SimTime`] with FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were pushed. This makes every simulation in the workspace replay
//! bit-identically for a fixed seed, which the paper's "five runs per
//! point" methodology depends on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: the payload `E` plus its firing time and a sequence
/// number used for FIFO tie-breaking.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use harvest_sim::engine::EventQueue;
/// use harvest_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), "first");
/// q.push(SimTime::from_secs(1), "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error and panics in debug builds;
    /// in release builds the event fires "now" (the clock never runs
    /// backwards).
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time} < {now}",
            now = self.now
        );
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Returns the firing time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The current simulated time (the firing time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(30), 3);
        q.push(SimTime::from_secs(10), 1);
        q.push(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.push(SimTime::from_secs(1), ());
        let (t1, _) = q.pop().unwrap();
        assert_eq!(q.now(), t1);
        let (t2, _) = q.pop().unwrap();
        assert!(t2 >= t1);
        assert_eq!(q.now(), t2);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        let (t, _) = q.pop().unwrap();
        // Schedule relative to current time, as simulation handlers do.
        q.push(t + SimDuration::from_secs(5), "b");
        q.push(t + SimDuration::from_secs(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }
}
