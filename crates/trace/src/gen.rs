//! Utilization-trace generators for the three tenant patterns.
//!
//! §3.2: "user-facing primary tenants often exhibit periodic utilization
//! (e.g., high during the day and low at night), whereas non-user-facing
//! (e.g., Web crawling, batch data analytics) or non-production (e.g.,
//! development, testing) primary tenants often do not. For example, a Web
//! crawling or data scrubber tenant may exhibit (roughly) constant
//! utilization, whereas a testing tenant often exhibits unpredictable
//! utilization behavior."

use harvest_signal::classify::UtilizationPattern;
use harvest_sim::dist;
use rand::Rng;

use crate::timeseries::TimeSeries;
use crate::{SAMPLES_PER_DAY, SAMPLE_INTERVAL};

/// Diurnal generator for user-facing (periodic) tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodicGen {
    /// Mean utilization level.
    pub base: f64,
    /// Amplitude of the diurnal swing (peak-to-mean).
    pub amplitude: f64,
    /// Phase offset in samples (which hour the peak falls on).
    pub phase: f64,
    /// Multiplier applied to the amplitude on weekends.
    pub weekend_factor: f64,
    /// Standard deviation of per-sample noise.
    pub noise_std: f64,
    /// Expected number of short load spikes per day.
    pub spikes_per_day: f64,
    /// Magnitude of a load spike (added to the level).
    pub spike_magnitude: f64,
}

/// Flat generator for always-on (constant) tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantGen {
    /// Utilization level.
    pub level: f64,
    /// Standard deviation of per-sample noise (small by definition).
    pub noise_std: f64,
}

/// Mean-reverting random-walk generator (Ornstein–Uhlenbeck with jumps)
/// for development/testing (unpredictable) tenants.
#[derive(Debug, Clone, PartialEq)]
pub struct UnpredictableGen {
    /// Long-run mean the walk reverts to.
    pub mean: f64,
    /// Mean-reversion strength per sample (0 = pure random walk).
    pub reversion: f64,
    /// Per-sample volatility.
    pub volatility: f64,
    /// Expected number of level jumps per day (redeploys, test runs).
    pub jumps_per_day: f64,
    /// Maximum jump magnitude (uniform in `[-max, max]`).
    pub jump_max: f64,
}

/// A utilization generator of any pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum UtilGen {
    /// Diurnal user-facing tenant.
    Periodic(PeriodicGen),
    /// Flat always-on tenant.
    Constant(ConstantGen),
    /// Random-walk development/testing tenant.
    Unpredictable(UnpredictableGen),
}

impl UtilGen {
    /// The pattern this generator is designed to produce.
    pub fn intended_pattern(&self) -> UtilizationPattern {
        match self {
            UtilGen::Periodic(_) => UtilizationPattern::Periodic,
            UtilGen::Constant(_) => UtilizationPattern::Constant,
            UtilGen::Unpredictable(_) => UtilizationPattern::Unpredictable,
        }
    }

    /// Generates `samples` two-minute samples of utilization.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, samples: usize) -> TimeSeries {
        let values = match self {
            UtilGen::Periodic(g) => g.generate_values(rng, samples),
            UtilGen::Constant(g) => g.generate_values(rng, samples),
            UtilGen::Unpredictable(g) => g.generate_values(rng, samples),
        };
        TimeSeries::new(SAMPLE_INTERVAL, values)
    }
}

impl PeriodicGen {
    fn generate_values<R: Rng + ?Sized>(&self, rng: &mut R, samples: usize) -> Vec<f64> {
        let spike_prob = self.spikes_per_day / SAMPLES_PER_DAY as f64;
        let mut spike_left = 0usize;
        (0..samples)
            .map(|i| {
                let day = i / SAMPLES_PER_DAY;
                let weekend = day % 7 >= 5;
                let amp = if weekend {
                    self.amplitude * self.weekend_factor
                } else {
                    self.amplitude
                };
                let angle =
                    2.0 * std::f64::consts::PI * (i as f64 + self.phase) / SAMPLES_PER_DAY as f64;
                let mut v = self.base + amp * angle.sin();
                if spike_left > 0 {
                    spike_left -= 1;
                    v += self.spike_magnitude;
                } else if dist::bernoulli(rng, spike_prob) {
                    // Spikes last 2–10 samples (4–20 minutes).
                    spike_left = 2 + (dist::uniform(rng, 0.0, 8.0) as usize);
                    v += self.spike_magnitude;
                }
                v += dist::normal(rng, 0.0, self.noise_std);
                v.clamp(0.0, 1.0)
            })
            .collect()
    }
}

impl ConstantGen {
    fn generate_values<R: Rng + ?Sized>(&self, rng: &mut R, samples: usize) -> Vec<f64> {
        (0..samples)
            .map(|_| (self.level + dist::normal(rng, 0.0, self.noise_std)).clamp(0.0, 1.0))
            .collect()
    }
}

impl UnpredictableGen {
    fn generate_values<R: Rng + ?Sized>(&self, rng: &mut R, samples: usize) -> Vec<f64> {
        let jump_prob = self.jumps_per_day / SAMPLES_PER_DAY as f64;
        let mut level = self.mean;
        (0..samples)
            .map(|_| {
                level += self.reversion * (self.mean - level);
                level += dist::normal(rng, 0.0, self.volatility);
                if dist::bernoulli(rng, jump_prob) {
                    level += dist::uniform(rng, -self.jump_max, self.jump_max);
                }
                level = level.clamp(0.0, 1.0);
                level
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SAMPLES_PER_MONTH;
    use harvest_signal::classify::{classify, ClassifierConfig};
    use harvest_sim::rng::stream_rng;

    fn month<R: Rng>(g: &UtilGen, rng: &mut R) -> TimeSeries {
        g.generate(rng, SAMPLES_PER_MONTH)
    }

    fn periodic() -> UtilGen {
        UtilGen::Periodic(PeriodicGen {
            base: 0.40,
            amplitude: 0.20,
            phase: 0.0,
            weekend_factor: 0.7,
            noise_std: 0.02,
            spikes_per_day: 1.0,
            spike_magnitude: 0.10,
        })
    }

    fn constant() -> UtilGen {
        UtilGen::Constant(ConstantGen {
            level: 0.55,
            noise_std: 0.02,
        })
    }

    fn unpredictable() -> UtilGen {
        UtilGen::Unpredictable(UnpredictableGen {
            mean: 0.35,
            reversion: 0.003,
            volatility: 0.015,
            jumps_per_day: 2.0,
            jump_max: 0.35,
        })
    }

    #[test]
    fn generators_classify_as_intended() {
        let cfg = ClassifierConfig::default();
        for (name, g) in [
            ("periodic", periodic()),
            ("constant", constant()),
            ("unpredictable", unpredictable()),
        ] {
            let mut rng = stream_rng(1234, name);
            let ts = month(&g, &mut rng);
            let got = classify(ts.values(), &cfg);
            assert_eq!(got, g.intended_pattern(), "{name} misclassified as {got}");
        }
    }

    #[test]
    fn values_stay_in_unit_interval() {
        for (name, g) in [
            ("periodic", periodic()),
            ("constant", constant()),
            ("unpredictable", unpredictable()),
        ] {
            let mut rng = stream_rng(5, name);
            let ts = month(&g, &mut rng);
            assert!(
                ts.values().iter().all(|&v| (0.0..=1.0).contains(&v)),
                "{name} escaped [0,1]"
            );
        }
    }

    #[test]
    fn periodic_mean_near_base() {
        let mut rng = stream_rng(7, "p");
        let ts = month(&periodic(), &mut rng);
        assert!((ts.mean() - 0.40).abs() < 0.05, "mean {}", ts.mean());
    }

    #[test]
    fn constant_has_low_cv() {
        let mut rng = stream_rng(7, "c");
        let ts = month(&constant(), &mut rng);
        assert!(ts.cv() < 0.08, "cv {}", ts.cv());
    }

    #[test]
    fn unpredictable_has_high_variation_without_periodicity() {
        let mut rng = stream_rng(7, "u");
        let ts = month(&unpredictable(), &mut rng);
        assert!(ts.cv() > 0.10, "cv {}", ts.cv());
    }

    #[test]
    fn weekend_amplitude_is_damped() {
        let g = PeriodicGen {
            base: 0.5,
            amplitude: 0.3,
            phase: 0.0,
            weekend_factor: 0.3,
            noise_std: 0.0,
            spikes_per_day: 0.0,
            spike_magnitude: 0.0,
        };
        let mut rng = stream_rng(7, "w");
        let values = g.generate_values(&mut rng, 7 * SAMPLES_PER_DAY);
        let weekday_peak = values[..SAMPLES_PER_DAY]
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        let weekend_peak = values[5 * SAMPLES_PER_DAY..6 * SAMPLES_PER_DAY]
            .iter()
            .cloned()
            .fold(0.0f64, f64::max);
        assert!(weekday_peak > weekend_peak + 0.1);
    }

    #[test]
    fn generation_is_deterministic() {
        let g = unpredictable();
        let a = month(&g, &mut stream_rng(9, "x"));
        let b = month(&g, &mut stream_rng(9, "x"));
        assert_eq!(a, b);
    }
}
