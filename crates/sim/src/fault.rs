//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a sorted list of [`FaultEvent`]s — server crashes
//! and restarts, whole-rack power loss, rack-uplink outages, disk
//! failures and slow-downs — plus the defensive-machinery knobs the
//! consuming engines honor: bounded retries with exponential backoff and
//! jitter ([`BackoffConfig`]), and optional in-flight repair shedding.
//! Plans are either scheduled by hand ([`FaultPlan::with_events`]) or
//! drawn deterministically from a named [`FaultProfile`] and a seed
//! stream, so the same `(profile, seed, cluster shape)` triple always
//! produces the same storm — the workspace's bit-identical-replay
//! guarantee extends to its failures.
//!
//! The plan itself is pure data: each engine (`harvest-dfs` durability
//! and availability, `harvest-sched`'s simulator, and through them the
//! `harvest-net` fabric and `harvest-disk` pool) merges the events into
//! its own deterministic event loop and implements the reaction —
//! detection, abort, retry, degradation. [`FaultPlan::none`] is the
//! universal off switch: every consumer treats an empty plan as "this
//! machinery does not exist" and stays bitwise identical to its
//! pre-fault behavior (pinned by oracle tests).
//!
//! # Cost model
//!
//! Injection is O(log n) per fault: events are pre-expanded (a rack
//! power loss becomes one crash per server) and pushed through the same
//! priority queues the engines already run, so a plan of `k` events
//! costs `k` heap pushes up front and nothing per simulated tick.
//! Detection is heartbeat-driven, not a fleet scan: a crash schedules
//! one declare-dead event at `crash + detection delay` (cancelled by an
//! earlier restart), so the fleet is never swept looking for dead
//! servers. Abort costs mirror completion costs — an aborted flow or
//! stream pays exactly the bookkeeping its completion would have paid,
//! plus one re-share of its component. With an empty plan every fault
//! branch is behind an `is_none()` check and the hot loops are
//! untouched.

use crate::rng::{splitmix64, stream_rng};
use crate::time::{SimDuration, SimTime};
use rand::RngExt;

/// The cluster geometry a profile needs to draw a plan: how many
/// servers, and how they fill racks. Matches `harvest-cluster`'s layout
/// convention — servers are assigned to racks contiguously in id order,
/// `rack = server / rack_size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterShape {
    /// Total servers.
    pub n_servers: usize,
    /// Servers per rack (the last rack may be partial).
    pub rack_size: usize,
}

impl ClusterShape {
    /// Number of racks (the last may be partially filled).
    pub fn n_racks(&self) -> usize {
        self.n_servers.div_ceil(self.rack_size.max(1))
    }

    /// The server-id range of one rack.
    pub fn rack_servers(&self, rack: u32) -> std::ops::Range<u32> {
        let lo = (rack as usize * self.rack_size).min(self.n_servers);
        let hi = (lo + self.rack_size).min(self.n_servers);
        lo as u32..hi as u32
    }
}

/// One kind of injected fault. Rack-level kinds are expanded by the
/// consuming engine using the contiguous rack layout ([`ClusterShape`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A server crashes: its containers die, its replicas go dark, and
    /// after the detection timeout it is declared dead.
    ServerCrash { server: u32 },
    /// A crashed server comes back (empty — its disk contents were
    /// declared lost if the detection timeout elapsed).
    ServerRestart { server: u32 },
    /// Every server in the rack crashes at once.
    RackPowerLoss { rack: u32 },
    /// Every server in the rack restarts at once.
    RackPowerRestore { rack: u32 },
    /// The rack's uplink (both directions) goes dark: flows crossing it
    /// abort, and new transfers cannot route through it.
    RackUplinkDown { rack: u32 },
    /// The rack's uplink comes back.
    RackUplinkUp { rack: u32 },
    /// A server's disk dies outright: its replicas are lost immediately
    /// (no detection delay — the DataNode reports the I/O errors) and
    /// in-flight streams on it abort. The server itself stays up.
    DiskFail { server: u32 },
    /// A server's disk browns out: its secondary (harvest) bandwidth is
    /// multiplied by `factor` in `(0, 1]` until a later event resets it.
    DiskDegrade { server: u32, factor: f64 },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Exponential backoff with deterministic jitter for fault-driven
/// retries. Attempt `k` (1-based) waits `base * 2^(k-1)` capped at
/// `cap`, plus a jitter in `[0, delay/2]` drawn by hashing
/// `(seed, entity, attempt)` — no RNG state, so retries never perturb
/// the simulation's shared random streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First-retry delay.
    pub base: SimDuration,
    /// Upper bound on the un-jittered delay.
    pub cap: SimDuration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: SimDuration::from_secs(30),
            cap: SimDuration::from_mins(30),
        }
    }
}

impl BackoffConfig {
    /// The delay before retry number `attempt` (1-based) of `entity`.
    pub fn delay(&self, seed: u64, entity: u64, attempt: u32) -> SimDuration {
        let shift = (attempt.saturating_sub(1)).min(20);
        let raw = self.base.as_millis().saturating_mul(1u64 << shift);
        let capped = raw.min(self.cap.as_millis()).max(1);
        let h = splitmix64(seed ^ splitmix64(entity) ^ ((attempt as u64) << 40));
        let jitter = h % (capped / 2 + 1);
        SimDuration::from_millis(capped + jitter)
    }
}

/// A deterministic fault schedule plus the reaction knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The injected faults, sorted by time (stable, so same-instant
    /// events keep their construction order).
    pub events: Vec<FaultEvent>,
    /// Bounded-retry ceiling: a repair or stage aborted by faults more
    /// than this many times is abandoned (permanent-loss accounting).
    pub max_retries: u32,
    /// Retry pacing.
    pub backoff: BackoffConfig,
    /// Graceful degradation under storm: when set, a durability repair
    /// slot that releases while at least this many repairs are already
    /// in transfer is shed (re-queued) instead of started.
    pub shed_inflight_above: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults, and every consumer's fault machinery
    /// switched off (bitwise identical to a build without it).
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            max_retries: 4,
            backoff: BackoffConfig::default(),
            shed_inflight_above: None,
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.events.is_empty()
    }

    /// A plan over the given events (sorted by time, stable).
    pub fn with_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan {
            events,
            ..FaultPlan::none()
        }
    }
}

/// Named fault profiles `repro --faults PROFILE` exposes. Each draws a
/// deterministic [`FaultPlan`] from a seed and the cluster shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// One rack loses power mid-run and comes back two hours later with
    /// its replacement disks degraded to 70% — the correlated-failure
    /// scenario that breaks per-server durability math.
    RackLoss,
    /// A rack uplink flaps several times: short outages that abort
    /// in-flight transfers without losing any data.
    LinkFlap,
    /// Scattered disk brown-outs (30–80% of nominal bandwidth) plus a
    /// few outright disk failures across the run.
    DiskRot,
    /// Everything at once, clustered in a one-hour window: a rack power
    /// loss, uplink flaps on two more racks, degraded disks, and a
    /// handful of independent server crashes.
    CorrelatedStorm,
}

impl FaultProfile {
    /// Every profile, in `--help` order.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::RackLoss,
        FaultProfile::LinkFlap,
        FaultProfile::DiskRot,
        FaultProfile::CorrelatedStorm,
    ];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::RackLoss => "rack-loss",
            FaultProfile::LinkFlap => "link-flap",
            FaultProfile::DiskRot => "disk-rot",
            FaultProfile::CorrelatedStorm => "correlated-storm",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Draws this profile's plan for a cluster of `shape` over
    /// `horizon`. Deterministic in `(self, seed, shape, horizon)`; the
    /// RNG is a dedicated `"fault"` stream, so arming a profile never
    /// perturbs any other random stream in the run.
    pub fn plan(self, seed: u64, shape: ClusterShape, horizon: SimDuration) -> FaultPlan {
        let mut rng = stream_rng(seed, "fault");
        let n_racks = shape.n_racks() as u32;
        let h = horizon.as_millis().max(1);
        // A time at `frac` of the horizon, jittered within `spread` of it.
        let at = |rng: &mut rand::rngs::StdRng, frac: f64, spread: f64| -> SimTime {
            let base = (h as f64 * frac) as u64;
            let wobble = (h as f64 * spread) as u64;
            let off = if wobble == 0 {
                0
            } else {
                rng.random_range(0..wobble)
            };
            SimTime::from_millis(base + off)
        };
        let mut events = Vec::new();
        match self {
            FaultProfile::RackLoss => {
                let rack = rng.random_range(0..n_racks.max(1) as usize) as u32;
                let t = at(&mut rng, 0.10, 0.10);
                let back = t + SimDuration::from_hours(2);
                events.push(FaultEvent {
                    at: t,
                    kind: FaultKind::RackPowerLoss { rack },
                });
                events.push(FaultEvent {
                    at: back,
                    kind: FaultKind::RackPowerRestore { rack },
                });
                // The replacement fleet comes back with degraded disks.
                for server in shape.rack_servers(rack) {
                    events.push(FaultEvent {
                        at: back,
                        kind: FaultKind::DiskDegrade {
                            server,
                            factor: 0.7,
                        },
                    });
                }
            }
            FaultProfile::LinkFlap => {
                let rack = rng.random_range(0..n_racks.max(1) as usize) as u32;
                for flap in 0..4u64 {
                    let t = at(&mut rng, 0.1 + 0.2 * flap as f64, 0.05);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::RackUplinkDown { rack },
                    });
                    events.push(FaultEvent {
                        at: t + SimDuration::from_mins(5),
                        kind: FaultKind::RackUplinkUp { rack },
                    });
                }
            }
            FaultProfile::DiskRot => {
                let degraded = (shape.n_servers / 100).max(2);
                for _ in 0..degraded {
                    let server = rng.random_range(0..shape.n_servers) as u32;
                    let factor = 0.3 + rng.random_range(0..=50) as f64 / 100.0;
                    let t = at(&mut rng, 0.05, 0.85);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::DiskDegrade { server, factor },
                    });
                }
                let failed = (degraded / 4).max(1);
                for _ in 0..failed {
                    let server = rng.random_range(0..shape.n_servers) as u32;
                    let t = at(&mut rng, 0.05, 0.85);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::DiskFail { server },
                    });
                }
            }
            FaultProfile::CorrelatedStorm => {
                let t0 = at(&mut rng, 0.20, 0.10);
                let rack = rng.random_range(0..n_racks.max(1) as usize) as u32;
                events.push(FaultEvent {
                    at: t0,
                    kind: FaultKind::RackPowerLoss { rack },
                });
                events.push(FaultEvent {
                    at: t0 + SimDuration::from_hours(2),
                    kind: FaultKind::RackPowerRestore { rack },
                });
                for k in 1..=2u32 {
                    let flapping = (rack + k) % n_racks.max(1);
                    let t = t0 + SimDuration::from_mins(10 * k as u64);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::RackUplinkDown { rack: flapping },
                    });
                    events.push(FaultEvent {
                        at: t + SimDuration::from_mins(15),
                        kind: FaultKind::RackUplinkUp { rack: flapping },
                    });
                }
                let degraded = (shape.n_servers / 50).max(2);
                for _ in 0..degraded {
                    let server = rng.random_range(0..shape.n_servers) as u32;
                    let off = rng.random_range(0..3_600_000u64);
                    events.push(FaultEvent {
                        at: t0 + SimDuration::from_millis(off),
                        kind: FaultKind::DiskDegrade {
                            server,
                            factor: 0.5,
                        },
                    });
                }
                for _ in 0..3 {
                    let server = rng.random_range(0..shape.n_servers) as u32;
                    let off = rng.random_range(0..3_600_000u64);
                    let t = t0 + SimDuration::from_millis(off);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::ServerCrash { server },
                    });
                    events.push(FaultEvent {
                        at: t + SimDuration::from_mins(30),
                        kind: FaultKind::ServerRestart { server },
                    });
                }
            }
        }
        FaultPlan::with_events(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHAPE: ClusterShape = ClusterShape {
        n_servers: 200,
        rack_size: 20,
    };

    #[test]
    fn none_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultProfile::RackLoss
            .plan(1, SHAPE, SimDuration::from_hours(24))
            .is_none());
    }

    #[test]
    fn plans_are_sorted_and_deterministic() {
        for p in FaultProfile::ALL {
            let a = p.plan(7, SHAPE, SimDuration::from_days(30));
            let b = p.plan(7, SHAPE, SimDuration::from_days(30));
            assert_eq!(a, b, "{} not deterministic", p.name());
            assert!(
                a.events.windows(2).all(|w| w[0].at <= w[1].at),
                "{} not sorted",
                p.name()
            );
            assert!(!a.events.is_empty(), "{} injects nothing", p.name());
        }
    }

    #[test]
    fn different_seeds_draw_different_storms() {
        let a = FaultProfile::CorrelatedStorm.plan(1, SHAPE, SimDuration::from_days(30));
        let b = FaultProfile::CorrelatedStorm.plan(2, SHAPE, SimDuration::from_days(30));
        assert_ne!(a, b);
    }

    #[test]
    fn parse_round_trips() {
        for p in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(p.name()), Some(p));
        }
        assert_eq!(FaultProfile::parse("nope"), None);
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let b = BackoffConfig::default();
        let d1 = b.delay(42, 7, 1);
        let d2 = b.delay(42, 7, 2);
        let d3 = b.delay(42, 7, 3);
        assert!(d1.as_millis() >= b.base.as_millis());
        assert!(d2 > d1 || d2.as_millis() >= b.base.as_millis() * 2);
        assert!(d3.as_millis() <= b.cap.as_millis() + b.cap.as_millis() / 2);
        // Huge attempts stay at the cap (plus jitter), no overflow.
        let big = b.delay(42, 7, 1_000);
        assert!(big.as_millis() <= b.cap.as_millis() + b.cap.as_millis() / 2);
        assert_eq!(b.delay(42, 7, 2), d2, "jitter must be deterministic");
        assert_ne!(
            b.delay(42, 7, 1).as_millis(),
            b.delay(42, 8, 1).as_millis(),
            "different entities should jitter apart (for these values)"
        );
    }

    #[test]
    fn rack_servers_handles_partial_last_rack() {
        let shape = ClusterShape {
            n_servers: 45,
            rack_size: 20,
        };
        assert_eq!(shape.n_racks(), 3);
        assert_eq!(shape.rack_servers(0), 0..20);
        assert_eq!(shape.rack_servers(2), 40..45);
    }
}
