//! Figure 15: data durability under reimages (§6.4).

use harvest_cluster::Datacenter;
use harvest_dfs::durability::{simulate_durability, DurabilityConfig};
use harvest_dfs::placement::PlacementPolicy;
use harvest_disk::DiskConfig;
use harvest_net::NetworkConfig;
use harvest_sim::fault::FaultPlan;
use harvest_sim::obs::json;
use harvest_sim::par::par_map;
use harvest_sim::{SharingMode, SimDuration};
use harvest_trace::datacenter::DatacenterProfile;

use super::STORAGE_CELLS as CELLS;
use crate::checkpoint::{self, get_f64, get_u64, hex_f64, hex_u64, obj, Journaled};
use crate::report::{sci, Table};
use crate::scale::Scale;

/// Aggregate of several durability runs.
#[derive(Debug, Clone, Copy)]
pub struct LossSummary {
    /// Mean lost-block percentage across runs.
    pub avg_percent: f64,
    /// Minimum across runs.
    pub min_percent: f64,
    /// Maximum across runs.
    pub max_percent: f64,
    /// Mean absolute lost blocks.
    pub avg_blocks: f64,
    /// Superseded transfer events dropped across runs, fabric plus
    /// disks (0 with both transfer models off) — repair-churn pressure
    /// on the event queues.
    pub stale_events_dropped: u64,
    /// Largest event-heap high-water mark any run reached.
    pub peak_queue_len: usize,
    /// Injected fault events fired across runs (0 unless a
    /// [`FaultPlan`] was armed).
    pub faults_injected: u64,
    /// In-flight repairs torn down by faults across runs.
    pub repairs_aborted: u64,
    /// Fault-aborted repairs re-queued with backoff across runs.
    pub fault_retries: u64,
    /// Repairs abandoned after exhausting the retry budget across runs.
    pub retries_exhausted: u64,
}

/// One durability simulation's outcome — the unit of the parallel
/// sweep matrix.
#[derive(Debug, Clone, Copy)]
pub struct RunLoss {
    /// Lost-block percentage.
    pub percent: f64,
    /// Absolute lost blocks.
    pub blocks: u64,
    /// Superseded transfer events dropped (fabric + disks).
    pub stale_events_dropped: u64,
    /// Event-heap high-water mark.
    pub peak_queue_len: usize,
    /// Injected fault events that fired (0 without an armed plan).
    pub faults_injected: u64,
    /// In-flight repairs torn down by a fault before finishing.
    pub repairs_aborted: u64,
    /// Fault-aborted repairs re-queued with backoff.
    pub fault_retries: u64,
    /// Repairs abandoned after exhausting the fault retry budget.
    pub retries_exhausted: u64,
}

impl Journaled for RunLoss {
    fn encode(&self) -> String {
        obj(&[
            ("percent", hex_f64(self.percent)),
            ("blocks", hex_u64(self.blocks)),
            ("stale", hex_u64(self.stale_events_dropped)),
            ("peak", hex_u64(self.peak_queue_len as u64)),
            ("fi", hex_u64(self.faults_injected)),
            ("ra", hex_u64(self.repairs_aborted)),
            ("fr", hex_u64(self.fault_retries)),
            ("re", hex_u64(self.retries_exhausted)),
        ])
    }

    fn decode(v: &json::Value) -> Option<Self> {
        Some(RunLoss {
            percent: get_f64(v, "percent")?,
            blocks: get_u64(v, "blocks")?,
            stale_events_dropped: get_u64(v, "stale")?,
            peak_queue_len: get_u64(v, "peak")? as usize,
            faults_injected: get_u64(v, "fi")?,
            repairs_aborted: get_u64(v, "ra")?,
            fault_retries: get_u64(v, "fr")?,
            retries_exhausted: get_u64(v, "re")?,
        })
    }
}

/// Runs one durability simulation: run `r` of a (DC, policy,
/// replication) cell. Self-contained — every mutable piece of state is
/// constructed inside from the seed, so runs can execute on any thread.
#[allow(clippy::too_many_arguments)]
pub fn run_loss(
    dc: &Datacenter,
    policy: PlacementPolicy,
    replication: usize,
    months: usize,
    base_seed: u64,
    r: usize,
    network: Option<NetworkConfig>,
    disk: Option<DiskConfig>,
    sharing: SharingMode,
    faults: &FaultPlan,
) -> RunLoss {
    let mut cfg = DurabilityConfig::paper(policy, replication, base_seed ^ (r as u64) << 32);
    cfg.months = months;
    cfg.network = network;
    cfg.disk = disk;
    cfg.sharing = sharing;
    cfg.faults = faults.clone();
    let result = simulate_durability(dc, &cfg);
    let mut stale = 0u64;
    let mut peak = 0usize;
    if let Some(f) = result.fabric {
        stale += f.stale_events_dropped;
        peak = peak.max(f.peak_queue_len);
    }
    if let Some(d) = result.disk {
        stale += d.stale_events_dropped;
        peak = peak.max(d.peak_queue_len);
    }
    RunLoss {
        percent: result.lost_percent,
        blocks: result.lost_blocks,
        stale_events_dropped: stale,
        peak_queue_len: peak,
        faults_injected: result.faults_injected,
        repairs_aborted: result.repairs_aborted,
        fault_retries: result.fault_retries,
        retries_exhausted: result.retries_exhausted,
    }
}

/// The `dfs/repair` blame line of one recorded reimage storm on `dc`
/// (largest tenant, §7 storm settings): how much of the repairs' time
/// was backpressure-queued, moving, or stuck behind one straggling
/// component. Needs a transfer model — without one repairs are instant
/// and there is nothing to attribute, so this returns `None`. Pure sim
/// time, so the line is deterministic across `--jobs` and recording
/// settings.
fn repair_blame(dc: &Datacenter, scale: &Scale, seed: u64) -> Option<String> {
    if scale.network.is_none() && scale.disk.is_none() {
        return None;
    }
    let tenant = dc.tenants.iter().max_by_key(|t| t.n_servers())?.id;
    let mut storm = harvest_dfs::repair::StormConfig::new(tenant, seed);
    storm.fill_fraction = 0.15;
    storm.network = scale.network;
    storm.disk = scale.disk;
    storm.sharing = scale.sharing;
    storm.max_repair_streams = Some(64);
    let mut rec = harvest_sim::obs::Recorder::new("blame");
    let _ = harvest_dfs::repair::simulate_reimage_storm_recorded(dc, &storm, &mut rec);
    let analysis = harvest_sim::obs::analyze::analyze_recorder(&rec).ok()?;
    analysis
        .states
        .iter()
        .find(|s| s.name == "dfs/repair")
        .map(|s| s.blame_line())
}

/// Folds per-run outcomes (in run order) into a [`LossSummary`].
pub fn summarize(runs: &[RunLoss]) -> LossSummary {
    let n = runs.len() as f64;
    LossSummary {
        avg_percent: runs.iter().map(|r| r.percent).sum::<f64>() / n,
        min_percent: runs.iter().map(|r| r.percent).fold(f64::MAX, f64::min),
        max_percent: runs.iter().map(|r| r.percent).fold(f64::MIN, f64::max),
        avg_blocks: runs.iter().map(|r| r.blocks as f64).sum::<f64>() / n,
        stale_events_dropped: runs.iter().map(|r| r.stale_events_dropped).sum(),
        peak_queue_len: runs.iter().map(|r| r.peak_queue_len).max().unwrap_or(0),
        faults_injected: runs.iter().map(|r| r.faults_injected).sum(),
        repairs_aborted: runs.iter().map(|r| r.repairs_aborted).sum(),
        fault_retries: runs.iter().map(|r| r.fault_retries).sum(),
        retries_exhausted: runs.iter().map(|r| r.retries_exhausted).sum(),
    }
}

/// [`summarize`] over the present slots of a supervised sweep chunk:
/// quarantined/cancelled tasks are `None` and skipped. An all-`None`
/// chunk yields NaN percentages and zero counters — the harness note
/// names the missing tasks.
pub fn summarize_present(runs: &[Option<RunLoss>]) -> LossSummary {
    let present: Vec<RunLoss> = runs.iter().flatten().copied().collect();
    if present.is_empty() {
        return LossSummary {
            avg_percent: f64::NAN,
            min_percent: f64::NAN,
            max_percent: f64::NAN,
            avg_blocks: f64::NAN,
            stale_events_dropped: 0,
            peak_queue_len: 0,
            faults_injected: 0,
            repairs_aborted: 0,
            fault_retries: 0,
            retries_exhausted: 0,
        };
    }
    summarize(&present)
}

/// Runs `runs` durability simulations for one (DC, policy, replication).
#[allow(clippy::too_many_arguments)]
pub fn loss_summary(
    dc: &Datacenter,
    policy: PlacementPolicy,
    replication: usize,
    months: usize,
    runs: usize,
    base_seed: u64,
    network: Option<NetworkConfig>,
    disk: Option<DiskConfig>,
    sharing: SharingMode,
    faults: &FaultPlan,
) -> LossSummary {
    let outcomes: Vec<RunLoss> = (0..runs)
        .map(|r| {
            run_loss(
                dc,
                policy,
                replication,
                months,
                base_seed,
                r,
                network,
                disk,
                sharing,
                faults,
            )
        })
        .collect();
    summarize(&outcomes)
}

/// Figure 15: percentage of lost blocks per datacenter, for HDFS-Stock
/// and HDFS-H at three- and four-way replication.
///
/// The whole matrix — 10 DCs × 4 cells × `runs` — is flattened into
/// independent tasks and fanned out over `scale.jobs` workers;
/// aggregation happens afterwards in input order, so the report is
/// byte-identical at any thread count.
pub fn fig15(scale: &Scale) -> String {
    let mut table = Table::new(
        format!(
            "Figure 15: lost blocks over {} months (avg [min..max] %, and avg blocks)",
            scale.durability_months
        ),
        &[
            "datacenter",
            "Stock R=3",
            "H R=3",
            "Stock R=4",
            "H R=4",
            "H R=3 blocks",
        ],
    );

    // Hoist the shared read-only state: one datacenter per profile,
    // themselves generated in parallel (each from its own seed stream).
    let dc_ids: Vec<usize> = (0..10).collect();
    let dcs: Vec<Datacenter> = par_map(scale.jobs, &dc_ids, |&dc_id| {
        let profile = DatacenterProfile::dc(dc_id).scaled(scale.dc_scale);
        Datacenter::generate(&profile, scale.seed)
    });
    // One fault plan per DC, shared by that DC's whole cell block (all
    // policies see the same storm — the comparison stays apples to
    // apples). Empty plans without `--faults PROFILE`.
    let horizon = SimDuration::from_days(30 * scale.durability_months as u64);
    let plans: Vec<FaultPlan> = dcs
        .iter()
        .enumerate()
        .map(|(dc_id, dc)| {
            scale.fault_plan(
                dc.n_servers(),
                scale.run_seed("fig15-faults", dc_id),
                horizon,
            )
        })
        .collect();

    // The task matrix, dc-major then cell then run, so each (dc, cell)
    // owns a contiguous chunk of `runs` results.
    struct Task {
        dc_id: usize,
        cell: usize,
        r: usize,
    }
    let mut tasks = Vec::with_capacity(10 * CELLS.len() * scale.runs);
    for dc_id in 0..10 {
        for cell in 0..CELLS.len() {
            for r in 0..scale.runs {
                tasks.push(Task { dc_id, cell, r });
            }
        }
    }
    // Supervised, checkpointable sweep: task keys are stable across
    // runs and `--jobs`, so `--resume` replays journaled results by
    // key and only the remainder is computed.
    let swept = checkpoint::sweep(
        scale,
        "fig15",
        &tasks,
        |t| format!("dc{}/cell{}/r{}", t.dc_id, t.cell, t.r),
        |t, _cancel| {
            let (policy, replication) = CELLS[t.cell];
            run_loss(
                &dcs[t.dc_id],
                policy,
                replication,
                scale.durability_months,
                scale.run_seed("fig15", t.dc_id),
                t.r,
                scale.network,
                scale.disk,
                scale.sharing,
                &plans[t.dc_id],
            )
        },
    );
    let outcomes = swept.results;

    let mut stock3_total = 0.0;
    let mut h3_total = 0.0;
    let mut h4_blocks = 0.0;
    let mut stale_total = 0u64;
    let mut peak_queue = 0usize;
    let mut fault_totals = [0u64; 4]; // injected, aborted, retried, exhausted
    for dc_id in 0..10 {
        let cell = |c: usize| -> LossSummary {
            let start = (dc_id * CELLS.len() + c) * scale.runs;
            summarize_present(&outcomes[start..start + scale.runs])
        };
        let stock3 = cell(0);
        let h3 = cell(1);
        let stock4 = cell(2);
        let h4 = cell(3);
        stock3_total += stock3.avg_percent;
        h3_total += h3.avg_percent;
        h4_blocks += h4.avg_blocks;
        for cell in [&stock3, &h3, &stock4, &h4] {
            stale_total += cell.stale_events_dropped;
            peak_queue = peak_queue.max(cell.peak_queue_len);
            fault_totals[0] += cell.faults_injected;
            fault_totals[1] += cell.repairs_aborted;
            fault_totals[2] += cell.fault_retries;
            fault_totals[3] += cell.retries_exhausted;
        }
        table.row(&[
            format!("DC-{dc_id}"),
            format!(
                "{} [{}..{}]",
                sci(stock3.avg_percent),
                sci(stock3.min_percent),
                sci(stock3.max_percent)
            ),
            format!(
                "{} [{}..{}]",
                sci(h3.avg_percent),
                sci(h3.min_percent),
                sci(h3.max_percent)
            ),
            sci(stock4.avg_percent),
            sci(h4.avg_percent),
            format!("{:.0}", h3.avg_blocks),
        ]);
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    let ratio = if h3_total > 0.0 {
        stock3_total / h3_total
    } else {
        f64::INFINITY
    };
    table.note("paper: HDFS-H reduces loss by more than two orders of magnitude at R=3, eliminates loss at R=4 in every DC, and its R=3 beats Stock's R=4 in all but one DC (max 81 lost blocks, DC-3)");
    table.note(format!(
        "measured: Stock-R3 / H-R3 loss ratio = {}; H-R4 lost blocks across all DCs = {:.0}",
        if ratio.is_finite() {
            format!("{ratio:.0}x")
        } else {
            "inf (H lost nothing)".into()
        },
        h4_blocks
    ));
    if scale.network.is_some() || scale.disk.is_some() {
        table.note(format!(
            "transfer-model churn: {stale_total} superseded completion events dropped, \
             peak event heap {peak_queue}"
        ));
    }
    // Fault accounting only when a profile is armed, so the default
    // report stays byte-identical to a build without fault injection.
    if let Some(profile) = scale.faults {
        table.note(format!(
            "fault profile '{}': {} faults injected, {} in-flight repairs aborted, \
             {} retried with backoff, {} retry budgets exhausted",
            profile.name(),
            fault_totals[0],
            fault_totals[1],
            fault_totals[2],
            fault_totals[3]
        ));
    }
    // Where repair time goes under the transfer models, from one
    // recorded reimage storm on DC-3 (the DC the paper singles out for
    // losses) — deterministic, so the report stays byte-identical
    // across --jobs and recording.
    if let Some(line) = repair_blame(&dcs[3], scale, scale.run_seed("fig15", 3)) {
        table.note(format!("repair blame (DC-3 reimage storm): {line}"));
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics_are_consistent() {
        let profile = DatacenterProfile::dc(3).scaled(0.02);
        let dc = Datacenter::generate(&profile, 42);
        let s = loss_summary(
            &dc,
            PlacementPolicy::Stock,
            3,
            3,
            2,
            7,
            None,
            None,
            SharingMode::Auto,
            &FaultPlan::none(),
        );
        assert!(s.min_percent <= s.avg_percent);
        assert!(s.avg_percent <= s.max_percent);
        assert!(s.avg_blocks >= 0.0);
    }

    #[test]
    fn history_beats_stock_in_high_reimage_dc() {
        let profile = DatacenterProfile::dc(3).scaled(0.02);
        let dc = Datacenter::generate(&profile, 42);
        let none = FaultPlan::none();
        let stock = loss_summary(
            &dc,
            PlacementPolicy::Stock,
            3,
            4,
            1,
            7,
            None,
            None,
            SharingMode::Auto,
            &none,
        );
        let hist = loss_summary(
            &dc,
            PlacementPolicy::History,
            3,
            4,
            1,
            7,
            None,
            None,
            SharingMode::Auto,
            &none,
        );
        assert!(
            hist.avg_percent < stock.avg_percent,
            "H {} vs Stock {}",
            hist.avg_percent,
            stock.avg_percent
        );
    }

    #[test]
    fn summarize_matches_loss_summary() {
        let profile = DatacenterProfile::dc(3).scaled(0.02);
        let dc = Datacenter::generate(&profile, 42);
        let none = FaultPlan::none();
        let runs: Vec<RunLoss> = (0..3)
            .map(|r| {
                run_loss(
                    &dc,
                    PlacementPolicy::Stock,
                    3,
                    3,
                    7,
                    r,
                    None,
                    None,
                    SharingMode::Auto,
                    &none,
                )
            })
            .collect();
        let a = summarize(&runs);
        let b = loss_summary(
            &dc,
            PlacementPolicy::Stock,
            3,
            3,
            3,
            7,
            None,
            None,
            SharingMode::Auto,
            &none,
        );
        assert_eq!(a.avg_percent.to_bits(), b.avg_percent.to_bits());
        assert_eq!(a.avg_blocks.to_bits(), b.avg_blocks.to_bits());
    }

    #[test]
    fn armed_profile_reports_fault_churn() {
        use harvest_sim::fault::{ClusterShape, FaultProfile};
        let profile = DatacenterProfile::dc(3).scaled(0.02);
        let dc = Datacenter::generate(&profile, 42);
        let shape = ClusterShape {
            n_servers: dc.n_servers(),
            rack_size: harvest_cluster::datacenter::RACK_SIZE as usize,
        };
        let plan = FaultProfile::RackLoss.plan(7, shape, SimDuration::from_days(90));
        let r = run_loss(
            &dc,
            PlacementPolicy::Stock,
            3,
            3,
            7,
            0,
            None,
            None,
            SharingMode::Auto,
            &plan,
        );
        assert!(r.faults_injected > 0, "rack-loss plan never fired");
        // Determinism: the same plan and seed reproduce the run bitwise.
        let r2 = run_loss(
            &dc,
            PlacementPolicy::Stock,
            3,
            3,
            7,
            0,
            None,
            None,
            SharingMode::Auto,
            &plan,
        );
        assert_eq!(r.percent.to_bits(), r2.percent.to_bits());
        assert_eq!(r.faults_injected, r2.faults_injected);
    }
}
