//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--net] [--seed N] [EXPERIMENT...]
//!
//!   EXPERIMENT   fig1..fig8, fig10..fig16, micro, or "all" (default)
//!   --full       bigger clusters, more runs (slower, tighter bands)
//!   --net        run over the harvest-net fabric (repair, remote
//!                reads, and shuffles pay for bandwidth)
//!   --seed N     master seed (default 42)
//! ```

use std::process::ExitCode;

use harvest_core::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    // Collect flags first, apply them to the scale afterwards, so flag
    // order never matters (`--seed 7 --full` must keep seed 7).
    let mut full = false;
    let mut net = false;
    let mut seed = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--net" => net = true,
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: repro [--full] [--net] [--seed N] [EXPERIMENT...]");
                println!("experiments: {} all", ALL_EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    let mut scale = if full { Scale::full() } else { Scale::quick() };
    if net {
        scale.network = Some(harvest_net::NetworkConfig::datacenter());
    }
    if let Some(seed) = seed {
        scale.seed = seed;
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for id in &experiments {
        let started = std::time::Instant::now();
        match run_experiment(id, &scale) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{id} took {:.1}s]", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
