//! The experiment harness: every table and figure of the paper's
//! evaluation, regenerated.
//!
//! Each `fig*` function in [`experiments`] runs one experiment at a
//! configurable [`scale::Scale`] and renders a plain-text report whose
//! rows correspond to the paper's plotted series. The `repro` binary
//! dispatches on experiment ids (`fig1` … `fig16`, `micro`, `all`).
//!
//! Absolute numbers differ from the paper's (their substrate was a
//! Microsoft production testbed; ours is a calibrated simulator), but
//! each report states the paper's qualitative claim next to the measured
//! result so the *shape* can be checked — see `EXPERIMENTS.md` at the
//! workspace root for the recorded comparison.
//!
//! # The task matrix
//!
//! Every sweep experiment is structured the same way: build the shared
//! read-only state (datacenters, utilization views), flatten the sweep
//! — every `(point × run)`, or per-tenant unit — into a list of task
//! descriptors each carrying its own derived seed stream, fan the list
//! out with [`harvest_sim::par::par_map`] over `Scale::jobs` workers,
//! then aggregate the returned results in input order. Because nothing
//! mutable is shared and aggregation order is fixed, a report is
//! byte-identical at any `--jobs` value (`crates/core/tests/
//! determinism.rs` pins this against the `--jobs 1` sequential
//! reference path, the same oracle pattern as `ReshareScope::Global`
//! and `TickSweep::Full`).
//!
//! # Surviving failures
//!
//! Sweeps run under [`checkpoint`]'s supervised harness: a panicking
//! task is retried with bounded backoff and then *quarantined* (its
//! row marked in the report, every other byte unchanged), a watchdog
//! flags straggling tasks against a per-task deadline, and
//! `repro --checkpoint FILE` journals each completed task's result so
//! a killed run resumes (`--resume FILE`) with stdout byte-identical
//! to an uninterrupted one.

pub mod checkpoint;
pub mod experiments;
pub mod report;
pub mod scale;

pub use checkpoint::{Checkpoint, Harness, SweepSnapshot};
pub use report::Table;
pub use scale::Scale;

/// Runs the experiment with the given id, returning its report.
///
/// Ids: `fig1`–`fig8`, `fig10`–`fig16`, `micro`. (`fig9` is the paper's
/// architecture diagram and `table1` its extension inventory — both are
/// documentation, not experiments.)
pub fn run_experiment(id: &str, scale: &Scale) -> Result<String, String> {
    let mut rec = harvest_sim::obs::Recorder::off();
    run_experiment_recorded(id, scale, &mut rec)
}

/// [`run_experiment`] with an observability [`Recorder`]
/// (`harvest_sim::obs::Recorder`): recording-aware experiments
/// (currently `micro`, which replays a recorded scheduling run, a
/// recorded reimage storm, and a profiled `par_map` sweep) feed spans,
/// counters, and histograms into `rec`; every other experiment ignores
/// it. The returned report is byte-identical to [`run_experiment`]'s —
/// recording is invisible on stdout.
pub fn run_experiment_recorded(
    id: &str,
    scale: &Scale,
    rec: &mut harvest_sim::obs::Recorder,
) -> Result<String, String> {
    match id {
        "fig1" => Ok(experiments::characterization::fig1(scale)),
        "fig2" => Ok(experiments::characterization::fig2(scale)),
        "fig3" => Ok(experiments::characterization::fig3(scale)),
        "fig4" => Ok(experiments::characterization::fig4(scale)),
        "fig5" => Ok(experiments::characterization::fig5(scale)),
        "fig6" => Ok(experiments::characterization::fig6(scale)),
        "fig7" => Ok(experiments::dag::fig7(scale)),
        "fig8" => Ok(experiments::grid::fig8(scale)),
        "fig10" => Ok(experiments::testbed::fig10(scale)),
        "fig11" => Ok(experiments::testbed::fig11(scale)),
        "fig12" => Ok(experiments::testbed::fig12(scale)),
        "fig13" => Ok(experiments::sched_sim::fig13(scale)),
        "fig14" => Ok(experiments::sched_sim::fig14(scale)),
        "fig15" => Ok(experiments::durability::fig15(scale)),
        "fig16" => Ok(experiments::availability::fig16(scale)),
        "micro" => Ok(experiments::micro::micro(scale, rec)),
        other => Err(format!(
            "unknown experiment '{other}' (expected fig1-fig8, fig10-fig16, or micro)"
        )),
    }
}

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig16", "micro",
];
