//! Benchmarks for the harvest-disk pool: per-channel re-sharing under
//! heavy concurrency, and the disk-bounded repair storm.

use criterion::{criterion_group, criterion_main, Criterion};
use harvest_cluster::{Datacenter, ServerId};
use harvest_dfs::repair::{simulate_reimage_storm, StormConfig};
use harvest_disk::{DiskConfig, DiskPool, IoDir};
use harvest_sim::SimTime;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

const MB: u64 = 1024 * 1024;

fn bench_disk(c: &mut Criterion) {
    // Throughput of the event-driven model itself: 10k concurrent
    // streams spread over 1k disks. Each event re-shares only its own
    // channel (~5 streams), so this measures the per-event constant,
    // not an O(population) scan.
    let mut group = c.benchmark_group("disk_pool");
    group.sample_size(10);
    group.bench_function("10k_streams_1k_disks", |b| {
        b.iter(|| {
            let mut pool = DiskPool::new(1_000, &DiskConfig::datacenter());
            for i in 0..10_000u64 {
                pool.schedule_stream(
                    SimTime::from_millis(i % 977),
                    ServerId((i % 1_000) as u32),
                    if i % 2 == 0 {
                        IoDir::Read
                    } else {
                        IoDir::Write
                    },
                    (i % 32 + 1) * MB,
                    i,
                );
            }
            black_box(pool.drain().len())
        })
    });
    group.finish();

    // The §7 lesson-2 scenario with platters modeled: a tenant-wide
    // reimage whose recovery is bounded by destination-disk writes.
    let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);
    let tenant = dc
        .tenants
        .iter()
        .max_by_key(|t| t.n_servers())
        .expect("dc has tenants")
        .id;
    let mut group = c.benchmark_group("reimage_storm_disk");
    group.sample_size(10);
    for (label, disk) in [
        ("disk_off", None),
        ("disk_on", Some(DiskConfig::datacenter())),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = StormConfig::new(tenant, 7);
                cfg.fill_fraction = 0.2;
                cfg.disk = disk;
                black_box(simulate_reimage_storm(black_box(&dc), &cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_disk
}
criterion_main!(benches);
