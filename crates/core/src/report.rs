//! Plain-text tables for experiment reports.

use std::fmt::Write as _;

/// A fixed-column text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a note line printed under the table (used for the paper's
    /// qualitative claim next to the measured shape).
    pub fn note(&mut self, text: impl Into<String>) -> &mut Self {
        self.notes.push(text.into());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<w$}|", "", w = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn num(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Formats a value in scientific notation when tiny (lost-block rates).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x < 0.01 {
        format!("{x:.2e}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "22".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("note: a note"));
        // Every data line has the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(pct(12.3456), "12.35%");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.000045), "4.50e-5");
        assert_eq!(sci(1.5), "1.500");
    }
}
