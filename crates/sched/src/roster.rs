//! Constant-time bookkeeping for the simulator's hot mutations.
//!
//! Two small indices back the scheduling simulator's per-event work:
//!
//! * [`ContainerRoster`] — which containers live on which server, in
//!   placement (oldest → youngest) order, plus the set of *occupied*
//!   servers. The node-manager kill policy is "youngest first", so the
//!   per-server order is load-bearing; the roster keeps it under O(1)
//!   amortized release by tombstoning instead of splicing (the old code
//!   paid a `position` scan plus an element shift per release). Dead
//!   entries are popped lazily off the tail when the youngest container
//!   is asked for, and the list is compacted (order-preserving) once
//!   tombstones outnumber the living.
//! * [`StageSources`] — which servers a stage's finished tasks ran on,
//!   i.e. where a dependent stage's shuffle reads from. Placement
//!   appends and returns a slot; a kill invalidates exactly the killed
//!   task's slot (O(1), no value scan), so the re-run's server is what
//!   the shuffle ends up reading.
//!
//! Both preserve deterministic iteration orders — the simulator's
//! placement RNG consumption depends on them.

use harvest_cluster::ServerId;
use std::collections::BTreeSet;

/// List length below which release never bothers compacting.
const COMPACT_MIN_LEN: usize = 32;

/// Per-server container lists (oldest → youngest) plus an occupied-server
/// index. Container liveness is owned by the caller and supplied as a
/// predicate; the roster only counts and orders.
#[derive(Debug, Clone)]
pub struct ContainerRoster {
    /// Container ids per server in placement order; may contain dead
    /// (tombstoned) ids between compactions.
    lists: Vec<Vec<usize>>,
    /// Alive containers per server.
    live: Vec<u32>,
    /// Servers with `live > 0`, ascending.
    occupied: BTreeSet<u32>,
}

impl ContainerRoster {
    /// An empty roster over `n_servers` servers.
    pub fn new(n_servers: usize) -> Self {
        ContainerRoster {
            lists: vec![Vec::new(); n_servers],
            live: vec![0; n_servers],
            occupied: BTreeSet::new(),
        }
    }

    /// Records container `cid` starting on `server` (it becomes the
    /// server's youngest).
    pub fn place(&mut self, server: ServerId, cid: usize) {
        let s = server.0 as usize;
        self.lists[s].push(cid);
        self.live[s] += 1;
        if self.live[s] == 1 {
            self.occupied.insert(server.0);
        }
    }

    /// Records a container leaving `server` (finished or killed). The
    /// caller must have marked it dead (so `alive` rejects it) *before*
    /// calling. O(1) amortized: the id is tombstoned in place; an idle
    /// server's list is dropped wholesale, and a list more than half
    /// dead is compacted, preserving placement order.
    pub fn release(&mut self, server: ServerId, alive: impl Fn(usize) -> bool) {
        let s = server.0 as usize;
        debug_assert!(self.live[s] > 0, "release on an empty server");
        self.live[s] -= 1;
        if self.live[s] == 0 {
            self.lists[s].clear();
            self.occupied.remove(&server.0);
        } else if self.lists[s].len() >= COMPACT_MIN_LEN
            && self.lists[s].len() >= 2 * self.live[s] as usize
        {
            self.lists[s].retain(|&cid| alive(cid));
        }
    }

    /// The youngest (most recently placed) container still alive on
    /// `server`, popping tombstones off the tail on the way.
    pub fn youngest(&mut self, server: ServerId, alive: impl Fn(usize) -> bool) -> Option<usize> {
        let list = &mut self.lists[server.0 as usize];
        while let Some(&cid) = list.last() {
            if alive(cid) {
                return Some(cid);
            }
            list.pop();
        }
        None
    }

    /// Alive containers on `server`.
    pub fn live_on(&self, server: ServerId) -> u32 {
        self.live[server.0 as usize]
    }

    /// Servers currently hosting at least one alive container,
    /// ascending — matching a full 0..n sweep's visit order, so a
    /// change-driven caller sees servers in the same order the
    /// full-sweep reference does.
    pub fn occupied(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.occupied.iter().map(|&s| ServerId(s))
    }

    /// Number of occupied servers.
    pub fn n_occupied(&self) -> usize {
        self.occupied.len()
    }
}

/// The servers a stage's placed tasks ran on, in placement order — the
/// upstream ends of a dependent stage's shuffle.
#[derive(Debug, Clone, Default)]
pub struct StageSources {
    /// One slot per placed task; a killed task's slot is invalidated
    /// (it produced no output to fetch).
    slots: Vec<Option<ServerId>>,
}

impl StageSources {
    /// An empty source list.
    pub fn new() -> Self {
        StageSources::default()
    }

    /// Records a task placed on `server`; returns the slot to pass to
    /// [`StageSources::invalidate`] should the task be killed.
    pub fn record(&mut self, server: ServerId) -> u32 {
        self.slots.push(Some(server));
        (self.slots.len() - 1) as u32
    }

    /// Drops the task in `slot` from the sources (killed before
    /// producing output). O(1); the re-run's `record` appends its new
    /// server, which is what the shuffle then reads.
    pub fn invalidate(&mut self, slot: u32) {
        self.slots[slot as usize] = None;
    }

    /// The live source servers in placement order, duplicates included.
    pub fn iter(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }

    /// Appends up to `cap` *distinct* live sources, in first-placement
    /// order, to `out`.
    pub fn distinct_into(&self, cap: usize, out: &mut Vec<ServerId>) {
        for s in self.iter() {
            if !out.contains(&s) {
                out.push(s);
                if out.len() >= cap {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const S0: ServerId = ServerId(0);
    const S1: ServerId = ServerId(1);

    /// Kill-order pin: the youngest alive container is always the most
    /// recently placed one that has not finished, whatever order the
    /// others left in — the node manager's "kill youngest first" must
    /// survive the tombstone representation.
    #[test]
    fn youngest_is_last_alive_in_placement_order() {
        let mut roster = ContainerRoster::new(2);
        let mut dead: HashSet<usize> = HashSet::new();
        for cid in 0..5 {
            roster.place(S0, cid);
        }
        assert_eq!(roster.youngest(S0, |c| !dead.contains(&c)), Some(4));
        // 4 finishes; 3 becomes youngest.
        dead.insert(4);
        roster.release(S0, |c| !dead.contains(&c));
        assert_eq!(roster.youngest(S0, |c| !dead.contains(&c)), Some(3));
        // 1 (a middle entry) finishes; youngest is still 3.
        dead.insert(1);
        roster.release(S0, |c| !dead.contains(&c));
        assert_eq!(roster.youngest(S0, |c| !dead.contains(&c)), Some(3));
        // A new placement becomes the youngest immediately.
        roster.place(S0, 7);
        assert_eq!(roster.youngest(S0, |c| !dead.contains(&c)), Some(7));
        // Kill it (youngest-first policy); 3 is youngest again.
        dead.insert(7);
        roster.release(S0, |c| !dead.contains(&c));
        assert_eq!(roster.youngest(S0, |c| !dead.contains(&c)), Some(3));
        assert_eq!(roster.live_on(S0), 3, "0, 2, 3 remain alive");
    }

    #[test]
    fn occupied_tracks_liveness_ascending() {
        let mut roster = ContainerRoster::new(3);
        assert_eq!(roster.n_occupied(), 0);
        roster.place(S1, 0);
        roster.place(S0, 1);
        assert_eq!(roster.occupied().collect::<Vec<_>>(), vec![S0, S1]);
        let dead: HashSet<usize> = [1].into_iter().collect();
        roster.release(S0, |c| !dead.contains(&c));
        assert_eq!(roster.occupied().collect::<Vec<_>>(), vec![S1]);
        assert_eq!(roster.live_on(S0), 0);
        assert_eq!(roster.youngest(S0, |c| !dead.contains(&c)), None);
    }

    /// Compaction fires once tombstones dominate a long list, and
    /// preserves placement order.
    #[test]
    fn compaction_preserves_order() {
        let mut roster = ContainerRoster::new(1);
        let mut dead: HashSet<usize> = HashSet::new();
        for cid in 0..COMPACT_MIN_LEN + 8 {
            roster.place(S0, cid);
        }
        // Finish every even container (none are the tail youngest until
        // the end, so tombstones accumulate mid-list).
        for cid in (0..COMPACT_MIN_LEN + 8).step_by(2) {
            dead.insert(cid);
            roster.release(S0, |c| !dead.contains(&c));
        }
        let len_after = roster.lists[0].len();
        assert!(
            len_after <= COMPACT_MIN_LEN + 8,
            "list grew past placements"
        );
        assert!(
            len_after < COMPACT_MIN_LEN + 8,
            "no compaction ever happened"
        );
        // Survivors pop youngest-first in reverse placement order.
        let mut seen = Vec::new();
        while let Some(cid) = roster.youngest(S0, |c| !dead.contains(&c)) {
            seen.push(cid);
            dead.insert(cid);
            roster.release(S0, |c| !dead.contains(&c));
        }
        let mut expect: Vec<usize> = (0..COMPACT_MIN_LEN + 8).filter(|c| c % 2 == 1).collect();
        expect.reverse();
        assert_eq!(seen, expect, "kill order changed under compaction");
    }

    /// A killed-then-rerun task's *new* server is what the shuffle
    /// reads: the kill invalidates exactly the killed task's slot.
    #[test]
    fn killed_task_rerun_updates_shuffle_sources() {
        let mut src = StageSources::new();
        let slot_a = src.record(S0);
        src.record(S1);
        // The S0 task is killed; its slot (and only its slot) goes.
        src.invalidate(slot_a);
        assert_eq!(src.iter().collect::<Vec<_>>(), vec![S1]);
        // The re-run lands on server 2: that is what a shuffle reads.
        let s2 = ServerId(2);
        src.record(s2);
        let mut distinct = Vec::new();
        src.distinct_into(16, &mut distinct);
        assert_eq!(distinct, vec![S1, s2]);
    }

    /// Duplicate-server sources: killing one task keeps the other
    /// task's (equal-valued) source, and dedup caps respect order.
    #[test]
    fn distinct_sources_cap_and_dedup() {
        let mut src = StageSources::new();
        let first = src.record(S0);
        src.record(S1);
        src.record(S0); // second task on S0
        src.invalidate(first);
        let mut out = Vec::new();
        src.distinct_into(16, &mut out);
        assert_eq!(out, vec![S1, S0], "surviving duplicate lost");
        let mut capped = Vec::new();
        src.distinct_into(1, &mut capped);
        assert_eq!(capped, vec![S1]);
    }
}
