//! Re-replication throttling and the repair network path.
//!
//! §5.1: after missing heartbeats from a data node, "the NN starts to
//! re-create the corresponding replicas in other servers without
//! overloading the network (30 blocks/hour/server)". The cluster's
//! aggregate repair bandwidth is therefore proportional to its size, and
//! every lost replica waits for detection plus its place in the repair
//! pipeline — the window in which further reimages can destroy the
//! remaining copies.
//!
//! The throttle alone misses the §7 lesson-2 failure mode: after a mass
//! reimage (a tenant-wide redeployment), every repair converges on the
//! same few racks and the fabric — not the 30 blocks/hour budget — sets
//! recovery time. [`simulate_reimage_storm`] replays exactly that
//! scenario, with each re-replication a real 256 MB flow through a
//! [`harvest_net::Fabric`] when a [`NetworkConfig`] is given.

use std::collections::{BinaryHeap, HashMap};

use harvest_cluster::{Datacenter, ServerId, TenantId};
use harvest_disk::{DiskConfig, DiskPool, IoDir};
use harvest_net::NetworkConfig;
use harvest_sim::obs::{HistogramId, Recorder, StateTrackId, TrackId};
use harvest_sim::rng::stream_rng;
use harvest_sim::{SharingMode, SimDuration, SimTime};
use rand::RngExt;

use crate::placement::{PlacementPolicy, Placer};
use crate::store::{BlockStore, BLOCK_BYTES};

/// Repair-timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairConfig {
    /// Time before the name node notices a dead data node (missed
    /// heartbeats; HDFS's default dead-node interval is ~10 minutes).
    pub detection_delay: SimDuration,
    /// Re-replication throttle per server per hour.
    pub blocks_per_server_per_hour: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            detection_delay: SimDuration::from_mins(10),
            blocks_per_server_per_hour: 30.0,
        }
    }
}

/// A cluster-wide repair pipeline: lost replicas are repaired in FIFO
/// order at the aggregate throttled rate.
#[derive(Debug, Clone)]
pub struct RepairPipeline {
    config: RepairConfig,
    /// Milliseconds of pipeline time consumed per block.
    ms_per_block: f64,
    /// When the pipeline next comes free (fractional ms for precision).
    next_free_ms: f64,
}

impl RepairPipeline {
    /// Creates a pipeline for a cluster of `n_servers`.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers` is zero or the rate is non-positive.
    pub fn new(config: RepairConfig, n_servers: usize) -> Self {
        assert!(n_servers > 0, "cluster has no servers");
        assert!(
            config.blocks_per_server_per_hour > 0.0,
            "repair rate must be positive"
        );
        let blocks_per_hour = config.blocks_per_server_per_hour * n_servers as f64;
        RepairPipeline {
            config,
            ms_per_block: 3_600_000.0 / blocks_per_hour,
            next_free_ms: 0.0,
        }
    }

    /// Schedules one replica repair for a loss observed at `lost_at`.
    /// Returns when the new replica comes online.
    pub fn schedule(&mut self, lost_at: SimTime) -> SimTime {
        let earliest = (lost_at + self.config.detection_delay).as_millis() as f64;
        let start = earliest.max(self.next_free_ms);
        self.next_free_ms = start + self.ms_per_block;
        SimTime::from_millis(self.next_free_ms.ceil() as u64)
    }

    /// The configured detection delay.
    pub fn detection_delay(&self) -> SimDuration {
        self.config.detection_delay
    }
}

/// Configuration of a tenant-wide reimage-storm replay.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Placement policy used both to fill the store and to repair.
    pub policy: PlacementPolicy,
    /// Replicas per block.
    pub replication: usize,
    /// Fraction of harvestable space filled before the storm.
    pub fill_fraction: f64,
    /// The tenant whose every server is reimaged at time zero.
    pub tenant: TenantId,
    /// Master seed.
    pub seed: u64,
    /// Repair timing (detection delay and throttle).
    pub repair: RepairConfig,
    /// When set, every re-replication is a 256 MB flow through the
    /// fabric and only counts as durable when its last byte lands; when
    /// `None`, a repair is durable the moment the throttle releases it
    /// (the seed model's free-and-instant network).
    pub network: Option<NetworkConfig>,
    /// When set, every re-replication additionally reads 256 MB off the
    /// surviving replica's disk and writes them to the destination's,
    /// sharing each disk with the other repairs converging on it; the
    /// repair is durable only when the *slowest* of network, source
    /// read, and destination write finishes. `None` keeps disks free
    /// and instant. Composes with [`StormConfig::network`].
    pub disk: Option<DiskConfig>,
    /// Fair-sharing engine for the fabric and disk pool. The default
    /// [`SharingMode::Auto`] serves single-bottleneck components and
    /// channels analytically in O(log n) per completion and falls back
    /// to progressive filling elsewhere; results are identical either
    /// way (rates bitwise, completions within float-reassociation
    /// drift under the millisecond clock).
    pub sharing: SharingMode,
    /// Cap on simultaneously in-flight repair streams (HDFS's
    /// `replication.max-streams` backpressure, cluster-wide). Slots past
    /// the cap wait for a repair to finish. Only meaningful with a
    /// transfer model on (network and/or disk); `None` leaves
    /// concurrency to the throttle alone — safe at the default
    /// 30 blocks/hour, but an aggressive throttle over a slow fabric or
    /// slow disks then grows an unbounded transfer backlog (and the
    /// fabric's re-share cost is quadratic in active flows), so set a
    /// cap whenever the throttle outruns transfer capacity.
    pub max_repair_streams: Option<usize>,
}

impl StormConfig {
    /// A storm over `tenant` with the paper's defaults.
    pub fn new(tenant: TenantId, seed: u64) -> Self {
        StormConfig {
            policy: PlacementPolicy::History,
            replication: 3,
            fill_fraction: 0.5,
            tenant,
            seed,
            repair: RepairConfig::default(),
            network: None,
            disk: None,
            sharing: SharingMode::default(),
            max_repair_streams: None,
        }
    }
}

/// Outcome of a reimage-storm replay.
#[derive(Debug, Clone)]
pub struct StormResult {
    /// Blocks that existed before the storm.
    pub n_blocks: u64,
    /// Replicas destroyed by the reimage.
    pub replicas_lost: u64,
    /// Replicas successfully re-created.
    pub repairs: u64,
    /// Blocks whose every replica sat on the reimaged tenant.
    pub lost_blocks: u64,
    /// When the last re-replication became durable (the
    /// time-to-full-durability after the storm).
    pub recovered_at: SimTime,
    /// Mean seconds a repair spent in transfer — from its throttle slot
    /// to the last of its modeled components (network flow, source disk
    /// read, destination disk write) landing. 0 with both models off.
    pub mean_transfer_secs: f64,
    /// Final fabric counters (peak concurrent flows, re-shares, stale
    /// events dropped, peak event-heap length) when the network was
    /// modeled — the storm's contention-churn fingerprint.
    pub fabric: Option<harvest_net::FabricStats>,
    /// Final disk-pool counters when disks were modeled.
    pub disk: Option<harvest_disk::DiskStats>,
}

/// One queued repair: the block becomes eligible at `at` (its throttle
/// slot). Reverse-ordered so a `BinaryHeap` pops earliest-first, with
/// the block id as a deterministic tie-break. Shared by the storm
/// replay and the durability simulation so the two repair paths use one
/// queue discipline.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct QueuedRepair {
    pub(crate) at: SimTime,
    pub(crate) block: crate::store::BlockId,
}

impl Ord for QueuedRepair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.block.cmp(&self.block))
    }
}

impl PartialOrd for QueuedRepair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Countdown over one repair's modeled transfer components (fabric
/// flow, source disk read, destination disk write): the outstanding
/// count, when the transfer started, and the latest component
/// completion seen so far. Shared by the storm replay and the
/// durability simulation so both land a repair at the *last*
/// component's instant — a repair moves at the min of its components'
/// rates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TransferParts {
    outstanding: u32,
    pub(crate) started: SimTime,
    last_done: SimTime,
}

impl TransferParts {
    pub(crate) fn new(outstanding: u32, started: SimTime) -> Self {
        TransferParts {
            outstanding,
            started,
            last_done: started,
        }
    }

    /// Records one component completion; returns the landing instant
    /// (the max over component completions) once this was the last one.
    pub(crate) fn component_done(&mut self, at: SimTime) -> Option<SimTime> {
        self.outstanding -= 1;
        self.last_done = self.last_done.max(at);
        (self.outstanding == 0).then_some(self.last_done)
    }
}

/// Picks the survivor a re-replication streams from: a same-rack
/// replica of the destination when one exists (the cheapest path), else
/// the first survivor. Shared by the storm replay and the durability
/// simulation so the two repair paths cannot drift apart.
///
/// # Panics
///
/// Panics if `existing` is empty (a lost block has no repair source).
pub fn repair_source(dc: &Datacenter, existing: &[u32], dest: ServerId) -> ServerId {
    let dest_rack = dc.server(dest).rack;
    ServerId(
        existing
            .iter()
            .copied()
            .find(|&s| dc.server(ServerId(s)).rack == dest_rack)
            .unwrap_or(existing[0]),
    )
}

/// Replays a tenant-wide mass reimage and the recovery that follows.
///
/// Phase 1 fills the store, phase 2 reimages every server of
/// `cfg.tenant` at time zero, phase 3 replays recovery: each lost
/// replica waits for heartbeat detection and its throttle slot, then —
/// with the network on — streams 256 MB from a surviving replica to its
/// new home through the shared fabric. Hundreds of concurrent
/// re-replications converging on a few racks saturate the
/// oversubscribed uplinks, which is exactly the §7 lesson-2 storm.
///
/// # Panics
///
/// Panics if the tenant id is out of range or the config is invalid.
pub fn simulate_reimage_storm(dc: &Datacenter, cfg: &StormConfig) -> StormResult {
    let mut rec = Recorder::off();
    simulate_reimage_storm_recorded(dc, cfg, &mut rec)
}

/// Metric ids registered when the storm's recorder is on.
struct StormObs {
    track: TrackId,
    repair_secs: HistogramId,
    /// Wait-state track `dfs/repair` (entity = repair id): `queued`
    /// from slot release to transfer start (backpressure wait),
    /// `running` while several components are in flight, then — once a
    /// single component remains — `blocked_on_net`,
    /// `blocked_on_disk_read`, or `blocked_on_disk_write` naming the
    /// straggler, exit when the last component lands.
    states: StateTrackId,
}

/// [`simulate_reimage_storm`] with observability: each repair's
/// transfer window (throttle slot to last-component landing) becomes a
/// span on the `dfs` track and a `dfs/repair_secs` histogram sample,
/// the fabric and disk pool record into child recorders absorbed back
/// into `rec`, and `dfs/*` counters mirror the result's totals.
/// Recording never changes the replay: the returned [`StormResult`]
/// matches [`simulate_reimage_storm`]'s exactly, and nothing is
/// printed.
///
/// # Panics
///
/// Panics if the tenant id is out of range or the config is invalid.
pub fn simulate_reimage_storm_recorded(
    dc: &Datacenter,
    cfg: &StormConfig,
    rec: &mut Recorder,
) -> StormResult {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    assert!(
        (cfg.tenant.0 as usize) < dc.n_tenants(),
        "tenant {} out of range",
        cfg.tenant
    );
    assert!(
        cfg.max_repair_streams != Some(0),
        "a zero stream cap can never repair anything"
    );
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "reimage-storm");
    let n_servers = dc.n_servers();

    // Phase 1: fill the store.
    let capacity = dc.total_harvest_blocks();
    let target = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let mut created = 0u64;
    for _ in 0..target {
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, None) {
            Some(p) => {
                store.create_block(&p.servers);
                created += 1;
            }
            None => break,
        }
    }

    // Phase 2: reimage the whole tenant at t = 0.
    let t0 = SimTime::ZERO;
    let mut pipeline = RepairPipeline::new(cfg.repair, n_servers);
    let mut heap: BinaryHeap<QueuedRepair> = BinaryHeap::new();
    let mut replicas_lost = 0u64;
    for server in dc.tenant(cfg.tenant).server_ids() {
        for block in store.reimage_server(server) {
            replicas_lost += 1;
            if store.replica_count(block) > 0 {
                heap.push(QueuedRepair {
                    at: pipeline.schedule(t0),
                    block,
                });
            }
        }
    }
    let lost_blocks = store.lost_blocks();

    // Phase 3: recovery. With a transfer model on, a throttle slot
    // starts the repair's components — a fabric flow, and/or a source
    // disk read plus destination disk write — and the repair is durable
    // when the last of them finishes (a repair moves at the min of the
    // three rates). Destination space is reserved up front via
    // `add_replica` at transfer start, so concurrent in-flight repairs
    // cannot over-commit a server. This differs from
    // `simulate_durability`, which commits replicas only when transfers
    // land: the storm replays a single failure at t = 0 with no further
    // reimages, so an early-committed copy can never be destroyed or
    // invalidated mid-flight and the two disciplines are observationally
    // identical here — while keeping this loop free of the durability
    // path's in-flight bookkeeping. If the storm ever gains
    // mid-recovery failures, adopt `simulate_durability`'s land-time
    // commitment (in_flight/doomed accounting) instead.
    let mut fabric = cfg.network.as_ref().map(|net| {
        let mut f = harvest_net::Fabric::from_datacenter(dc, net);
        f.set_sharing_mode(cfg.sharing);
        f
    });
    let mut disks = cfg.disk.as_ref().map(|d| {
        let mut p = DiskPool::from_datacenter(dc, d);
        p.set_sharing_mode(cfg.sharing);
        p
    });
    let obs = rec.is_on().then(|| StormObs {
        track: rec.track("dfs"),
        repair_secs: rec.histogram("dfs/repair_secs"),
        states: rec.state_track("dfs/repair"),
    });
    if rec.is_on() {
        if let Some(f) = fabric.as_mut() {
            f.set_recorder(rec.child());
        }
        if let Some(p) = disks.as_mut() {
            p.set_recorder(rec.child());
        }
    }
    let modeled = fabric.is_some() || disks.is_some();
    // In-flight repairs, by repair id.
    let mut in_flight: HashMap<u64, TransferParts> = HashMap::new();
    // Obs-only: each in-flight repair's outstanding components, named
    // by the wait state a lone straggler would put the repair in.
    let mut tail: HashMap<u64, Vec<&'static str>> = HashMap::new();
    let mut next_rid = 0u64;
    let mut repairs = 0u64;
    let mut recovered_at = t0;
    let mut transfer_secs_total = 0.0;
    let mut transfers = 0u64;

    loop {
        // Backpressure: at the stream cap, only a completion can free a
        // slot, so time jumps straight to the next transfer event.
        let at_cap = cfg
            .max_repair_streams
            .map(|cap| modeled && in_flight.len() >= cap)
            .unwrap_or(false);
        let t_slot = heap.peek().map(|r| r.at).filter(|_| !at_cap);
        let t_net = fabric.as_ref().and_then(|f| f.next_event_time());
        let t_disk = disks.as_ref().and_then(|p| p.next_event_time());
        let Some(now) = [t_slot, t_net, t_disk].into_iter().flatten().min() else {
            break;
        };

        // Transfer events first: a completed repair is durable before a
        // simultaneous slot release is processed.
        let rec = &mut *rec;
        let obs = obs.as_ref();
        let tail = &mut tail;
        let mut finish_part = |rid: u64, at: SimTime, kind: &'static str| {
            let e = in_flight.get_mut(&rid).expect("repair in flight");
            if let Some(landed_at) = e.component_done(at) {
                let started = e.started;
                in_flight.remove(&rid);
                repairs += 1;
                recovered_at = recovered_at.max(landed_at);
                transfer_secs_total += landed_at.since(started).as_secs_f64();
                transfers += 1;
                if let Some(obs) = obs {
                    rec.observe(obs.repair_secs, landed_at.since(started).as_secs_f64());
                    rec.span(obs.track, "repair", started, landed_at);
                    rec.state_exit(obs.states, rid, landed_at);
                    tail.remove(&rid);
                }
            } else if let Some(obs) = obs {
                // A component finished but the repair is still waiting;
                // once exactly one remains, blame it by name.
                let comps = tail.get_mut(&rid).expect("tracked while in flight");
                comps.retain(|&k| k != kind);
                if comps.len() == 1 {
                    rec.state_enter(obs.states, rid, comps[0], at);
                }
            }
        };
        if let Some(f) = fabric.as_mut() {
            for done in f.pump(now) {
                finish_part(done.tag, done.at, "blocked_on_net");
            }
        }
        if let Some(p) = disks.as_mut() {
            for done in p.pump(now) {
                let kind = match done.dir {
                    IoDir::Read => "blocked_on_disk_read",
                    IoDir::Write => "blocked_on_disk_write",
                };
                finish_part(done.tag, done.at, kind);
            }
        }

        while heap.peek().map(|r| r.at <= now).unwrap_or(false) {
            if let Some(cap) = cfg.max_repair_streams {
                if modeled && in_flight.len() >= cap {
                    break; // resume when a repair completes
                }
            }
            let r = heap.pop().expect("peeked");
            let block = r.block;
            if store.replica_count(block) >= cfg.replication {
                continue; // duplicate entry
            }
            let existing: Vec<u32> = store.replicas(block).to_vec();
            let Some(dest) = placer.place_repair(&mut rng, &store, &existing, None) else {
                // Cluster momentarily full; retry after another slot.
                heap.push(QueuedRepair {
                    at: pipeline.schedule(r.at),
                    block,
                });
                continue;
            };
            store.add_replica(block, dest);
            if modeled {
                let src = repair_source(dc, &existing, dest);
                // A slot deferred by backpressure starts now, not at
                // its original release time.
                let start = r.at.max(now);
                let rid = next_rid;
                next_rid += 1;
                let mut parts = 0u32;
                if let Some(f) = fabric.as_mut() {
                    f.schedule_flow(start, src, dest, BLOCK_BYTES, rid);
                    parts += 1;
                }
                if let Some(p) = disks.as_mut() {
                    p.schedule_stream(start, src, IoDir::Read, BLOCK_BYTES, rid);
                    p.schedule_stream(start, dest, IoDir::Write, BLOCK_BYTES, rid);
                    parts += 2;
                }
                in_flight.insert(rid, TransferParts::new(parts, start));
                if let Some(obs) = obs {
                    rec.state_enter(obs.states, rid, "queued", r.at);
                    rec.state_enter(obs.states, rid, "running", start);
                    let mut comps: Vec<&'static str> = Vec::new();
                    if fabric.is_some() {
                        comps.push("blocked_on_net");
                    }
                    if disks.is_some() {
                        comps.push("blocked_on_disk_read");
                        comps.push("blocked_on_disk_write");
                    }
                    tail.insert(rid, comps);
                }
            } else {
                repairs += 1;
                recovered_at = recovered_at.max(r.at);
            }
            if store.replica_count(block) < cfg.replication {
                heap.push(QueuedRepair {
                    at: pipeline.schedule(r.at),
                    block,
                });
            }
        }
    }

    if rec.is_on() {
        if let Some(f) = fabric.as_mut() {
            let child = f.take_recorder();
            rec.absorb(child);
        }
        if let Some(p) = disks.as_mut() {
            let child = p.take_recorder();
            rec.absorb(child);
        }
        let id = rec.counter("dfs/repairs");
        rec.counter_set(id, repairs);
        let id = rec.counter("dfs/replicas_lost");
        rec.counter_set(id, replicas_lost);
        let id = rec.counter("dfs/lost_blocks");
        rec.counter_set(id, lost_blocks);
    }

    StormResult {
        n_blocks: created,
        replicas_lost,
        repairs,
        lost_blocks,
        recovered_at,
        mean_transfer_secs: if transfers == 0 {
            0.0
        } else {
            transfer_secs_total / transfers as f64
        },
        fabric: fabric.as_ref().map(|f| *f.stats()),
        disk: disks.as_ref().map(|p| *p.stats()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_delay_applies() {
        let mut p = RepairPipeline::new(RepairConfig::default(), 1_000);
        let t = p.schedule(SimTime::from_secs(100));
        // 100 s + 600 s detection + one block of pipeline time.
        assert!(t >= SimTime::from_secs(700));
        assert!(t < SimTime::from_secs(702));
    }

    #[test]
    fn pipeline_throttles_bursts() {
        // 100 servers × 30 blocks/hour = 3000 blocks/hour.
        let mut p = RepairPipeline::new(RepairConfig::default(), 100);
        let lost_at = SimTime::from_secs(0);
        let times: Vec<SimTime> = (0..3_000).map(|_| p.schedule(lost_at)).collect();
        // The last of 3000 repairs lands about an hour after detection.
        let last = *times.last().unwrap();
        let first = times[0];
        let spread = last.since(first);
        assert!(
            (spread.as_secs_f64() - 3_600.0).abs() < 30.0,
            "3000 repairs spread over {spread} (expected ~1h)"
        );
        // Monotone.
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn idle_pipeline_does_not_accumulate_lag() {
        let mut p = RepairPipeline::new(RepairConfig::default(), 100);
        p.schedule(SimTime::from_secs(0));
        // A loss much later is not delayed by the long-idle pipeline.
        let t = p.schedule(SimTime::from_secs(86_400));
        assert!(t < SimTime::from_secs(86_400 + 605));
    }

    #[test]
    fn bigger_clusters_repair_faster() {
        let mut small = RepairPipeline::new(RepairConfig::default(), 10);
        let mut big = RepairPipeline::new(RepairConfig::default(), 10_000);
        let lost = SimTime::from_secs(0);
        let small_last = (0..1_000).map(|_| small.schedule(lost)).last().unwrap();
        let big_last = (0..1_000).map(|_| big.schedule(lost)).last().unwrap();
        assert!(big_last < small_last);
    }

    fn storm_dc() -> Datacenter {
        use harvest_trace::datacenter::DatacenterProfile;
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 17)
    }

    fn biggest_tenant(dc: &Datacenter) -> TenantId {
        dc.tenants
            .iter()
            .max_by_key(|t| t.n_servers())
            .expect("dc has tenants")
            .id
    }

    #[test]
    fn storm_recovers_every_survivable_block() {
        let dc = storm_dc();
        let cfg = StormConfig::new(biggest_tenant(&dc), 3);
        let r = simulate_reimage_storm(&dc, &cfg);
        assert!(r.n_blocks > 0);
        assert!(r.replicas_lost > 0, "reimaging a tenant lost nothing");
        // Every lost replica of a surviving block is eventually repaired
        // (a lost block is one whose full replica set sat on the tenant).
        assert_eq!(
            r.repairs,
            r.replicas_lost - r.lost_blocks * cfg.replication as u64,
            "repairs do not cover the surviving blocks' losses"
        );
        assert!(r.recovered_at > SimTime::ZERO);
    }

    #[test]
    fn network_extends_recovery_time() {
        let dc = storm_dc();
        let tenant = biggest_tenant(&dc);
        let mut base = StormConfig::new(tenant, 3);
        base.fill_fraction = 0.2;
        let off = simulate_reimage_storm(&dc, &base);
        let mut with_net = base.clone();
        with_net.network = Some(NetworkConfig::datacenter());
        let on = simulate_reimage_storm(&dc, &with_net);
        assert_eq!(off.repairs, on.repairs, "network changed repair count");
        assert!(
            on.recovered_at >= off.recovered_at,
            "fabric made recovery faster? off {} on {}",
            off.recovered_at,
            on.recovered_at
        );
        assert!(on.mean_transfer_secs > 0.0);
        assert_eq!(off.mean_transfer_secs, 0.0);
    }

    #[test]
    fn tighter_oversubscription_slows_the_storm() {
        let dc = storm_dc();
        let tenant = biggest_tenant(&dc);
        let mut cfg = StormConfig::new(tenant, 3);
        cfg.fill_fraction = 0.2;
        // A pathologically slow fabric (100 Mb NICs) must stretch
        // transfers well past the fast fabric's. Its capacity sits below
        // the throttle's demand, so backpressure is required to keep the
        // backlog (and the simulation) bounded.
        cfg.max_repair_streams = Some(64);
        cfg.network = Some(NetworkConfig {
            nic_gbps: 0.1,
            oversubscription: 8.0,
            ..NetworkConfig::datacenter()
        });
        let slow = simulate_reimage_storm(&dc, &cfg);
        cfg.network = Some(NetworkConfig::non_blocking());
        let fast = simulate_reimage_storm(&dc, &cfg);
        assert!(
            slow.mean_transfer_secs > fast.mean_transfer_secs * 2.0,
            "slow fabric {}s vs fast {}s",
            slow.mean_transfer_secs,
            fast.mean_transfer_secs
        );
        assert!(slow.recovered_at >= fast.recovered_at);
    }

    #[test]
    fn storm_replays_deterministically() {
        let dc = storm_dc();
        let mut cfg = StormConfig::new(biggest_tenant(&dc), 9);
        cfg.fill_fraction = 0.15;
        cfg.network = Some(NetworkConfig::datacenter());
        let a = simulate_reimage_storm(&dc, &cfg);
        let b = simulate_reimage_storm(&dc, &cfg);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.recovered_at, b.recovered_at);
        assert_eq!(a.mean_transfer_secs, b.mean_transfer_secs);
    }

    #[test]
    fn disks_extend_recovery_beyond_the_network() {
        // A 256 MB destination write at 120 MB/s (~2.1 s) dominates the
        // same block's 10 GbE flow (~0.2 s): with disks modeled, every
        // repair window stretches and full durability lands strictly
        // later.
        let dc = storm_dc();
        let mut cfg = StormConfig::new(biggest_tenant(&dc), 3);
        cfg.fill_fraction = 0.2;
        cfg.network = Some(NetworkConfig::datacenter());
        let net_only = simulate_reimage_storm(&dc, &cfg);
        cfg.disk = Some(DiskConfig::datacenter());
        let with_disks = simulate_reimage_storm(&dc, &cfg);
        assert_eq!(
            net_only.repairs, with_disks.repairs,
            "disk model changed repair count"
        );
        assert!(
            with_disks.recovered_at > net_only.recovered_at,
            "disks made recovery no slower? net {} vs both {}",
            net_only.recovered_at,
            with_disks.recovered_at
        );
        assert!(with_disks.mean_transfer_secs > net_only.mean_transfer_secs);
    }

    #[test]
    fn disk_only_storm_recovers_everything() {
        // Disks without a fabric still bound recovery (the seed model's
        // instant transfers are gone) and every survivable block is
        // repaired.
        let dc = storm_dc();
        let mut cfg = StormConfig::new(biggest_tenant(&dc), 3);
        cfg.fill_fraction = 0.2;
        cfg.disk = Some(DiskConfig::datacenter());
        let r = simulate_reimage_storm(&dc, &cfg);
        assert_eq!(
            r.repairs,
            r.replicas_lost - r.lost_blocks * cfg.replication as u64
        );
        assert!(r.mean_transfer_secs > 0.0);
    }

    #[test]
    fn recording_does_not_change_the_storm() {
        let dc = storm_dc();
        let mut cfg = StormConfig::new(biggest_tenant(&dc), 13);
        cfg.fill_fraction = 0.15;
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.disk = Some(DiskConfig::datacenter());
        cfg.max_repair_streams = Some(64);
        let plain = simulate_reimage_storm(&dc, &cfg);
        let mut rec = Recorder::new("storm-test");
        let recorded = simulate_reimage_storm_recorded(&dc, &cfg, &mut rec);
        assert_eq!(plain.repairs, recorded.repairs);
        assert_eq!(plain.recovered_at, recorded.recovered_at);
        assert_eq!(plain.mean_transfer_secs, recorded.mean_transfer_secs);
        assert_eq!(plain.fabric, recorded.fabric);
        assert_eq!(plain.disk, recorded.disk);
        // Counters mirror the result, and the children were absorbed.
        assert_eq!(rec.counter_value("dfs/repairs"), Some(recorded.repairs));
        assert_eq!(
            rec.counter_value("dfs/replicas_lost"),
            Some(recorded.replicas_lost)
        );
        assert_eq!(
            rec.counter_value("fabric/completed"),
            Some(recorded.fabric.expect("net on").completed)
        );
        assert_eq!(
            rec.counter_value("disk/completed"),
            Some(recorded.disk.expect("disks on").completed)
        );
    }

    #[test]
    fn disked_storm_replays_deterministically() {
        let dc = storm_dc();
        let mut cfg = StormConfig::new(biggest_tenant(&dc), 11);
        cfg.fill_fraction = 0.15;
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.disk = Some(DiskConfig::datacenter());
        cfg.max_repair_streams = Some(64);
        let a = simulate_reimage_storm(&dc, &cfg);
        let b = simulate_reimage_storm(&dc, &cfg);
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.recovered_at, b.recovered_at);
        assert_eq!(a.mean_transfer_secs, b.mean_transfer_secs);
    }

    #[test]
    fn randomized_storms_conserve_state_time_and_ignore_recording() {
        // Randomized DC-9 workloads: different seeds, fills, and
        // transfer-model combinations. For each, (a) the run with a
        // live recorder is bitwise identical to the recorder-off run,
        // and (b) the recorded wait states tile every repair's lifetime
        // exactly (integer sim time — no epsilon) with a critical path
        // bounded by the makespan.
        let dc = storm_dc();
        let tenant = biggest_tenant(&dc);
        let variants: [(u64, f64, bool, bool); 3] = [
            (5, 0.10, true, false),
            (23, 0.15, true, true),
            (31, 0.12, false, true),
        ];
        for (seed, fill, net, disk) in variants {
            let mut cfg = StormConfig::new(tenant, seed);
            cfg.fill_fraction = fill;
            cfg.network = net.then(NetworkConfig::datacenter);
            cfg.disk = disk.then(DiskConfig::datacenter);
            cfg.max_repair_streams = Some(64);
            let plain = simulate_reimage_storm(&dc, &cfg);
            let mut rec = Recorder::new("storm-props");
            let recorded = simulate_reimage_storm_recorded(&dc, &cfg, &mut rec);
            assert_eq!(plain.repairs, recorded.repairs, "seed {seed}");
            assert_eq!(plain.recovered_at, recorded.recovered_at, "seed {seed}");
            assert_eq!(
                plain.mean_transfer_secs.to_bits(),
                recorded.mean_transfer_secs.to_bits(),
                "seed {seed}"
            );

            let analysis =
                harvest_sim::obs::analyze::analyze_recorder(&rec).expect("trace analyzes");
            let sb = analysis
                .states
                .iter()
                .find(|s| s.name == "dfs/repair")
                .expect("repair states recorded");
            assert!(sb.entities > 0, "seed {seed}: no repairs tracked");
            assert_eq!(
                sb.conserved, sb.entities,
                "seed {seed}: state breakdown must tile each repair's lifetime"
            );
            assert!(
                sb.critical_us <= sb.makespan_us,
                "seed {seed}: critical path exceeds makespan"
            );
        }
    }
}
