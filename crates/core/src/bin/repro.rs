//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--full] [--seed N] [EXPERIMENT...]
//!
//!   EXPERIMENT   fig1..fig8, fig10..fig16, micro, or "all" (default)
//!   --full       bigger clusters, more runs (slower, tighter bands)
//!   --seed N     master seed (default 42)
//! ```

use std::process::ExitCode;

use harvest_core::{run_experiment, Scale, ALL_EXPERIMENTS};

fn main() -> ExitCode {
    let mut scale = Scale::quick();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::full(),
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => scale.seed = seed,
                None => {
                    eprintln!("--seed requires an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: repro [--full] [--seed N] [EXPERIMENT...]");
                println!("experiments: {} all", ALL_EXPERIMENTS.join(" "));
                return ExitCode::SUCCESS;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    for id in &experiments {
        let started = std::time::Instant::now();
        match run_experiment(id, &scale) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{id} took {:.1}s]", started.elapsed().as_secs_f64());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
