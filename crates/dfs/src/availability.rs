//! The availability simulation (Figure 16).
//!
//! A block access fails when *every* replica sits on a server whose
//! primary CPU utilization exceeds the busy threshold (2/3 — §6.4:
//! "accesses cannot proceed if CPU utilization is higher than 66%").
//! Placement diversity across peak-utilization rows is what keeps at
//! least one replica reachable as utilization scales up.
//!
//! With a [`NetworkConfig`], accesses additionally pay transfer latency:
//! a read served by the block's first replica is local and free, while a
//! busy first replica forces a *remote* read from the nearest available
//! copy — in-rack or across the oversubscribed core — which is the
//! latency penalty hiding inside Figure 16's busy-server story.

use harvest_cluster::reserve::is_busy;
use harvest_cluster::{Datacenter, ServerId, UtilizationView};
use harvest_net::{NetworkConfig, Topology};
use harvest_sim::metrics::Histogram;
use harvest_sim::rng::stream_rng;
use harvest_sim::{dist, SimDuration, SimTime};
use rand::RngExt;

use crate::placement::{PlacementPolicy, Placer};
use crate::store::{BlockId, BlockStore, BLOCK_BYTES};

/// Availability-simulation parameters.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Placement policy under test.
    pub policy: PlacementPolicy,
    /// Replicas per block.
    pub replication: usize,
    /// Fraction of harvestable space filled with blocks.
    pub fill_fraction: f64,
    /// Simulated span (the paper uses one month).
    pub span: SimDuration,
    /// Mean block accesses per second across the cluster.
    pub accesses_per_second: f64,
    /// Master seed.
    pub seed: u64,
    /// When set, successful reads are charged their network transfer
    /// latency over this fabric (`None` keeps reads free, as the seed
    /// model did).
    pub network: Option<NetworkConfig>,
}

impl AvailabilityConfig {
    /// The paper's one-month setup.
    pub fn paper(policy: PlacementPolicy, replication: usize, seed: u64) -> Self {
        AvailabilityConfig {
            policy,
            replication,
            fill_fraction: 0.5,
            span: SimDuration::from_days(30),
            accesses_per_second: 10.0,
            seed,
            network: None,
        }
    }
}

/// Outcome of an availability simulation.
#[derive(Debug, Clone)]
pub struct AvailabilityResult {
    /// Blocks placed.
    pub n_blocks: u64,
    /// Total accesses attempted.
    pub accesses: u64,
    /// Accesses that found every replica busy.
    pub failed: u64,
    /// Percentage of failed accesses (Figure 16's y-axis).
    pub failed_percent: f64,
    /// Mean fleet utilization of the view (Figure 16's x-axis).
    pub mean_utilization: f64,
    /// Reads forced off the block's first (local) replica because its
    /// server was busy (0 with the network off).
    pub forced_remote_reads: u64,
    /// Mean read latency in milliseconds (0 with the network off).
    pub mean_read_ms: f64,
    /// 99th-percentile read latency in milliseconds (0 with the network
    /// off).
    pub p99_read_ms: f64,
}

/// Runs the availability simulation.
pub fn simulate_availability(
    dc: &Datacenter,
    view: &UtilizationView,
    cfg: &AvailabilityConfig,
) -> AvailabilityResult {
    assert!(cfg.replication >= 1, "replication must be at least 1");
    let placer = Placer::new(dc, cfg.policy);
    let mut store = BlockStore::new(dc);
    let mut rng = stream_rng(cfg.seed, "availability");
    let n_servers = dc.n_servers();

    // Place blocks with the busy mask of time zero (creation-time
    // awareness for PT/H; Stock ignores the mask internally).
    let busy0 = busy_mask(dc, view, SimTime::ZERO);
    let capacity = dc.total_harvest_blocks();
    let target = ((capacity as f64 * cfg.fill_fraction) / cfg.replication as f64) as u64;
    let mut n_blocks = 0u64;
    for _ in 0..target {
        let writer = ServerId(rng.random_range(0..n_servers) as u32);
        match placer.place_new(&mut rng, &store, writer, cfg.replication, Some(&busy0)) {
            Some(p) => {
                store.create_block(&p.servers);
                n_blocks += 1;
            }
            None => break,
        }
    }

    // Replay a month of accesses on the two-minute utilization grid.
    let topo = cfg
        .network
        .as_ref()
        .map(|net| Topology::from_datacenter(dc, net));
    let tick = harvest_trace::SAMPLE_INTERVAL;
    let accesses_per_tick = cfg.accesses_per_second * tick.as_secs_f64();
    let n_ticks = cfg.span.div_duration(tick);
    let mut accesses = 0u64;
    let mut failed = 0u64;
    let mut forced_remote = 0u64;
    // A month of accesses is tens of millions of samples; a fixed-bin
    // histogram gives the mean and p99 the result reports in O(bins)
    // memory instead of storing every latency. Its ceiling is the
    // fabric's own worst-case idle transfer (plus slack), so no
    // configuration — however slow — can clamp the reported p99.
    let ceiling_ms = topo
        .as_ref()
        .map(|t| t.max_idle_transfer_secs(BLOCK_BYTES) * 1_000.0 * 1.01)
        .unwrap_or(1_000.0);
    let mut latencies = Histogram::new(0.0, ceiling_ms, 2_000);
    let mut latency_sum = 0.0;
    let mut served_tracked = 0u64;
    for k in 0..n_ticks {
        let now = SimTime::ZERO + tick.mul_f64(k as f64);
        let busy = busy_mask(dc, view, now);
        let n_acc = dist::poisson(&mut rng, accesses_per_tick);
        for _ in 0..n_acc {
            let block = BlockId(rng.random_range(0..n_blocks));
            accesses += 1;
            let replicas = store.replicas(block);
            let all_busy = replicas.iter().all(|&s| busy[s as usize]);
            if all_busy {
                failed += 1;
                continue;
            }
            // The read is served. With a fabric, charge its transfer:
            // the first replica is the writer-local copy the consuming
            // task was scheduled next to; a busy local server forces the
            // read to the nearest available copy across the network.
            let Some(topo) = topo.as_ref() else { continue };
            let local = ServerId(replicas[0]);
            let ms = if !busy[replicas[0] as usize] {
                topo.idle_transfer_secs(local, local, BLOCK_BYTES) * 1_000.0
            } else {
                forced_remote += 1;
                replicas
                    .iter()
                    .filter(|&&s| !busy[s as usize])
                    .map(|&s| topo.idle_transfer_secs(ServerId(s), local, BLOCK_BYTES))
                    .fold(f64::MAX, f64::min)
                    * 1_000.0
            };
            latencies.push(ms);
            latency_sum += ms;
            served_tracked += 1;
        }
    }

    AvailabilityResult {
        n_blocks,
        accesses,
        failed,
        failed_percent: if accesses == 0 {
            0.0
        } else {
            failed as f64 / accesses as f64 * 100.0
        },
        mean_utilization: view.mean_fleet_util(),
        forced_remote_reads: forced_remote,
        mean_read_ms: if served_tracked == 0 {
            0.0
        } else {
            latency_sum / served_tracked as f64
        },
        p99_read_ms: latencies.quantile(0.99).unwrap_or(0.0),
    }
}

/// The busy mask at an instant: true for servers denying accesses.
pub fn busy_mask(dc: &Datacenter, view: &UtilizationView, now: SimTime) -> Vec<bool> {
    (0..dc.n_servers())
        .map(|s| is_busy(view.server_util(ServerId(s as u32), now)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;
    use harvest_trace::scaling::{calibrate, ScalingKind};

    fn setup(target_util: f64) -> (Datacenter, UtilizationView) {
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 31);
        let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
        let factor = calibrate(&traces, ScalingKind::Linear, target_util);
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, factor);
        (dc, view)
    }

    fn run(policy: PlacementPolicy, util: f64, replication: usize) -> AvailabilityResult {
        let (dc, view) = setup(util);
        let mut cfg = AvailabilityConfig::paper(policy, replication, 7);
        cfg.span = SimDuration::from_days(3);
        cfg.accesses_per_second = 5.0;
        simulate_availability(&dc, &view, &cfg)
    }

    #[test]
    fn low_utilization_has_negligible_failures() {
        // Figure 16: ~0% failed accesses at low utilization. A handful of
        // accesses out of a million can still land on a transiently busy
        // replica set, so assert a negligible *rate* rather than exactly
        // zero (the exact count is RNG-stream dependent).
        for policy in PlacementPolicy::ALL {
            let r = run(policy, 0.25, 3);
            assert!(
                r.failed_percent < 0.01,
                "{policy} failed {}% of accesses at 25% util",
                r.failed_percent
            );
        }
    }

    #[test]
    fn high_utilization_fails_stock_first() {
        let stock = run(PlacementPolicy::Stock, 0.55, 3);
        let hist = run(PlacementPolicy::History, 0.55, 3);
        assert!(
            hist.failed_percent <= stock.failed_percent,
            "HDFS-H ({}) worse than Stock ({})",
            hist.failed_percent,
            stock.failed_percent
        );
    }

    #[test]
    fn extra_replication_reduces_failures() {
        let r3 = run(PlacementPolicy::Stock, 0.6, 3);
        let r4 = run(PlacementPolicy::Stock, 0.6, 4);
        assert!(
            r4.failed_percent <= r3.failed_percent,
            "R=4 ({}) worse than R=3 ({})",
            r4.failed_percent,
            r3.failed_percent
        );
    }

    #[test]
    fn accesses_follow_configured_rate() {
        let r = run(PlacementPolicy::Stock, 0.4, 3);
        let expected = 5.0 * 3.0 * 86_400.0;
        let ratio = r.accesses as f64 / expected;
        assert!((0.95..1.05).contains(&ratio), "accesses off: {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(PlacementPolicy::History, 0.5, 3);
        let b = run(PlacementPolicy::History, 0.5, 3);
        assert_eq!(a.failed, b.failed);
        assert_eq!(a.accesses, b.accesses);
    }

    fn run_with_network(policy: PlacementPolicy, util: f64) -> AvailabilityResult {
        let (dc, view) = setup(util);
        let mut cfg = AvailabilityConfig::paper(policy, 3, 7);
        cfg.span = SimDuration::from_days(2);
        cfg.accesses_per_second = 5.0;
        cfg.network = Some(NetworkConfig::datacenter());
        simulate_availability(&dc, &view, &cfg)
    }

    #[test]
    fn network_off_reads_are_free() {
        let r = run(PlacementPolicy::Stock, 0.55, 3);
        assert_eq!(r.forced_remote_reads, 0);
        assert_eq!(r.mean_read_ms, 0.0);
        assert_eq!(r.p99_read_ms, 0.0);
    }

    #[test]
    fn busy_local_replicas_force_paid_remote_reads() {
        let r = run_with_network(PlacementPolicy::Stock, 0.55);
        assert!(r.forced_remote_reads > 0, "no remote reads at 55% util");
        assert!(r.mean_read_ms > 0.0);
        // A forced remote read moves a 256 MB block: at least ~0.2 s on
        // an otherwise-idle 10 GbE path.
        assert!(r.p99_read_ms == 0.0 || r.p99_read_ms >= 200.0);
    }

    #[test]
    fn utilization_scales_the_remote_read_penalty() {
        let low = run_with_network(PlacementPolicy::Stock, 0.3);
        let high = run_with_network(PlacementPolicy::Stock, 0.6);
        assert!(
            high.forced_remote_reads > low.forced_remote_reads,
            "busier fleet forced fewer remote reads? {} vs {}",
            high.forced_remote_reads,
            low.forced_remote_reads
        );
        assert!(high.mean_read_ms >= low.mean_read_ms);
    }
}
