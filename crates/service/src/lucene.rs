//! A discrete-event queueing simulator of one search server.
//!
//! Validates the analytic [`crate::LatencyModel`]: requests arrive
//! Poisson, service times are exponential, and up to `threads` requests
//! run concurrently (the paper's Lucene setup "uses more threads (up to
//! 12) with higher load"). Harvested cores reduce the thread pool.

use std::collections::VecDeque;

use harvest_sim::engine::EventQueue;
use harvest_sim::metrics::{Percentiles, SortedSamples};
use harvest_sim::obs::{HistogramId, Recorder, StateTrackId};
use harvest_sim::{dist, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One simulated search server.
#[derive(Debug, Clone)]
pub struct SearchServer {
    /// Worker threads (cores) available to the service.
    pub threads: u32,
    /// Mean service time of one query.
    pub mean_service: SimDuration,
}

/// Measured latency distribution from a [`SearchServer`] run.
///
/// The samples are frozen (sorted once at the end of the run), so every
/// quantile read is `&self` — callers can share a run's stats without
/// re-sorting or needing mutable access.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Completed requests.
    pub completed: u64,
    /// Response-time samples (sojourn time: queueing + service), sorted.
    samples: SortedSamples,
}

impl ServiceStats {
    /// The p99 response time in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.samples.p99().unwrap_or(0.0) * 1_000.0
    }

    /// The mean response time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.samples.mean().unwrap_or(0.0) * 1_000.0
    }
}

enum Ev {
    Arrival,
    Departure { arrived: SimTime, req: u64 },
}

/// Metric ids registered when a run's recorder is on.
struct ServiceObs {
    /// Wait-state track `service/request` (entity = arrival index):
    /// `queued` from arrival to dispatch — zero-length when a thread
    /// is free — then `running` until departure.
    states: StateTrackId,
    sojourn_secs: HistogramId,
}

impl SearchServer {
    /// A 12-thread server with a 100 ms mean query (Lucene-scale).
    pub fn lucene_like() -> Self {
        SearchServer {
            threads: 12,
            mean_service: SimDuration::from_millis(100),
        }
    }

    /// Runs the server at offered utilization `rho` (fraction of total
    /// thread-seconds demanded) for `n_requests` requests.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not positive or the server has no threads.
    pub fn run(&self, rho: f64, n_requests: u64, seed: u64) -> ServiceStats {
        let mut rec = Recorder::off();
        self.run_recorded(rho, n_requests, seed, &mut rec)
    }

    /// [`SearchServer::run`] with observability: each request's wait
    /// states land on the `service/request` state track (see
    /// [`ServiceObs::states`]) and sojourn times are sampled into
    /// `service/sojourn_secs`. Recording never changes the run: the
    /// returned stats are identical to [`SearchServer::run`]'s (pinned
    /// by tests), and nothing is printed.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not positive or the server has no threads.
    pub fn run_recorded(
        &self,
        rho: f64,
        n_requests: u64,
        seed: u64,
        rec: &mut Recorder,
    ) -> ServiceStats {
        assert!(rho > 0.0, "offered load must be positive");
        assert!(self.threads > 0, "server has no threads");
        let mut rng = StdRng::seed_from_u64(seed);
        let service_rate = 1.0 / self.mean_service.as_secs_f64();
        let arrival_rate = rho * self.threads as f64 * service_rate;
        let obs = rec.is_on().then(|| ServiceObs {
            states: rec.state_track("service/request"),
            sojourn_secs: rec.histogram("service/sojourn_secs"),
        });

        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut waiting: VecDeque<(SimTime, u64)> = VecDeque::new();
        let mut busy = 0u32;
        let mut completed = 0u64;
        let mut next_req = 0u64;
        let mut percentiles = Percentiles::new();

        let first = SimDuration::from_secs_f64(dist::exponential(&mut rng, arrival_rate));
        queue.push(SimTime::ZERO + first, Ev::Arrival);
        let mut arrivals_left = n_requests;

        while let Some((now, ev)) = queue.pop() {
            match ev {
                Ev::Arrival => {
                    arrivals_left -= 1;
                    if arrivals_left > 0 {
                        let gap =
                            SimDuration::from_secs_f64(dist::exponential(&mut rng, arrival_rate));
                        queue.push(now + gap, Ev::Arrival);
                    }
                    let req = next_req;
                    next_req += 1;
                    if let Some(obs) = &obs {
                        rec.state_enter(obs.states, req, "queued", now);
                    }
                    if busy < self.threads {
                        busy += 1;
                        if let Some(obs) = &obs {
                            rec.state_enter(obs.states, req, "running", now);
                        }
                        let s =
                            SimDuration::from_secs_f64(dist::exponential(&mut rng, service_rate));
                        queue.push(now + s, Ev::Departure { arrived: now, req });
                    } else {
                        waiting.push_back((now, req));
                    }
                }
                Ev::Departure { arrived, req } => {
                    completed += 1;
                    percentiles.push(now.since(arrived).as_secs_f64());
                    if let Some(obs) = &obs {
                        rec.observe(obs.sojourn_secs, now.since(arrived).as_secs_f64());
                        rec.state_exit(obs.states, req, now);
                    }
                    match waiting.pop_front() {
                        Some((arrived_next, req_next)) => {
                            if let Some(obs) = &obs {
                                rec.state_enter(obs.states, req_next, "running", now);
                            }
                            let s = SimDuration::from_secs_f64(dist::exponential(
                                &mut rng,
                                service_rate,
                            ));
                            queue.push(
                                now + s,
                                Ev::Departure {
                                    arrived: arrived_next,
                                    req: req_next,
                                },
                            );
                        }
                        None => busy -= 1,
                    }
                }
            }
        }
        ServiceStats {
            completed,
            samples: percentiles.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_all_requests() {
        let s = SearchServer::lucene_like();
        let stats = s.run(0.3, 5_000, 1);
        assert_eq!(stats.completed, 5_000);
    }

    #[test]
    fn latency_grows_with_load() {
        let s = SearchServer::lucene_like();
        let lo = s.run(0.2, 20_000, 2);
        let mid = s.run(0.6, 20_000, 2);
        let hi = s.run(0.9, 20_000, 2);
        // Below saturation the p99 is dominated by the service-time tail
        // and is flat to within a millisecond at this sample count;
        // approaching saturation it must climb decisively.
        assert!(lo.p99_ms() <= mid.p99_ms() + 1.0);
        assert!(mid.p99_ms() < hi.p99_ms());
        assert!(lo.p99_ms() * 1.05 < hi.p99_ms());
    }

    #[test]
    fn fewer_threads_hurt_at_same_demand() {
        // The same *absolute* demand on fewer threads (harvest pressure).
        let full = SearchServer::lucene_like();
        let cut = SearchServer {
            threads: 6,
            mean_service: full.mean_service,
        };
        // Demand = 0.4 × 12 threads; on 6 threads that is rho = 0.8 —
        // noticeable, and near-saturation on 5 threads it blows up.
        let p_full = full.run(0.4, 20_000, 3);
        let p_cut = cut.run(0.8, 20_000, 3);
        assert!(
            p_cut.p99_ms() > p_full.p99_ms(),
            "cut {} vs full {}",
            p_cut.p99_ms(),
            p_full.p99_ms()
        );
        let squeezed = SearchServer {
            threads: 5,
            mean_service: full.mean_service,
        };
        let p_squeezed = squeezed.run(0.4 * 12.0 / 5.0, 20_000, 3);
        assert!(
            p_squeezed.p99_ms() > p_full.p99_ms() * 1.5,
            "squeezed {} vs full {}",
            p_squeezed.p99_ms(),
            p_full.p99_ms()
        );
    }

    #[test]
    fn analytic_model_matches_queueing_shape() {
        // The analytic model and the simulator should rank load levels
        // identically and keep low-load latency near the service floor.
        let s = SearchServer::lucene_like();
        let model = crate::LatencyModel {
            base_ms: 100.0,
            kappa: 0.6,
            cap_ms: 10_000.0,
            noise_ms: 0.0,
        };
        // Multi-server queues stay flat until near saturation, so probe
        // the congested regime where ordering is meaningful.
        let mut prev_sim = 0.0;
        let mut prev_model = 0.0;
        for rho in [0.5, 0.9, 0.97] {
            let sim = s.run(rho, 30_000, 4);
            let sim_p99 = sim.p99_ms();
            let model_p99 = model.p99_ms(rho, 0);
            assert!(sim_p99 > prev_sim && model_p99 > prev_model);
            prev_sim = sim_p99;
            prev_model = model_p99;
        }
    }

    #[test]
    fn recording_does_not_change_the_run() {
        let s = SearchServer::lucene_like();
        let plain = s.run(0.9, 5_000, 7);
        let mut rec = Recorder::new("svc");
        let recorded = s.run_recorded(0.9, 5_000, 7, &mut rec);
        assert_eq!(plain.completed, recorded.completed);
        assert_eq!(plain.p99_ms(), recorded.p99_ms());
        assert_eq!(plain.mean_ms(), recorded.mean_ms());
        let trace = rec.chrome_trace_json();
        assert!(trace.contains("service/request"), "state track exported");
    }

    #[test]
    fn low_load_latency_near_service_time() {
        let s = SearchServer::lucene_like();
        let stats = s.run(0.05, 20_000, 5);
        // Essentially no queueing: p99 ≈ p99 of Exp(100ms) ≈ 460 ms.
        let p99 = stats.p99_ms();
        assert!((300.0..600.0).contains(&p99), "p99 {p99}");
        assert!((stats.mean_ms() - 100.0).abs() < 10.0);
    }
}
