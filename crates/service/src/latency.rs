//! Analytic tail-latency model for a co-located search server.
//!
//! A server has 12 cores; the primary's offered load needs
//! `util × 12` of them, and harvested containers hold `secondary`
//! cores. When the primary can no longer spread over all cores, queueing
//! delay grows with the effective utilization `ρ = demand / available`
//! in the M/M/c spirit: `p99 ≈ base × (1 + κ · ρ / (1 - ρ))`, saturating
//! at a timeout cap as `ρ → 1`.
//!
//! Calibration targets the paper's Figure 10: the no-harvesting testbed
//! at ~33% average CPU shows p99 between 369 and 406 ms; YARN-Stock
//! (oblivious, up to 12 harvested cores) blows past 1 s; YARN-PT stays
//! close to baseline; YARN-H nearly matches it (max 44 ms apart).

use harvest_cluster::reserve::SERVER_CAPACITY;
use harvest_sim::rng::splitmix64;

/// The analytic p99 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Service-time floor in ms (an uncongested query).
    pub base_ms: f64,
    /// Congestion gain: how fast p99 grows with ρ/(1-ρ).
    pub kappa: f64,
    /// Timeout cap in ms (saturated server).
    pub cap_ms: f64,
    /// Amplitude of per-sample noise in ms (measurement jitter).
    pub noise_ms: f64,
}

impl LatencyModel {
    /// Calibration reproducing Figure 10's bands: at 33% utilization and
    /// no harvesting, p99 ≈ 370–405 ms.
    pub fn paper_calibrated() -> Self {
        LatencyModel {
            base_ms: 300.0,
            kappa: 0.60,
            cap_ms: 3_000.0,
            noise_ms: 12.0,
        }
    }

    /// Deterministic p99 (no noise) for a primary at `util` with
    /// `secondary_cores` harvested away.
    pub fn p99_ms(&self, util: f64, secondary_cores: u32) -> f64 {
        let total = SERVER_CAPACITY.cores as f64;
        let available = (total - secondary_cores as f64).max(0.0);
        let demand = util.clamp(0.0, 1.0) * total;
        if available <= demand || available == 0.0 {
            return self.cap_ms;
        }
        let rho = demand / available;
        let p99 = self.base_ms * (1.0 + self.kappa * rho / (1.0 - rho));
        p99.min(self.cap_ms)
    }

    /// p99 with deterministic pseudo-noise derived from `(seed, server,
    /// minute)` — reproducible "measurement jitter" for the figures.
    pub fn p99_noisy_ms(&self, util: f64, secondary_cores: u32, seed: u64, tag: u64) -> f64 {
        let p = self.p99_ms(util, secondary_cores);
        if p >= self.cap_ms {
            return p;
        }
        let h = splitmix64(seed ^ splitmix64(tag));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        (p + (unit * 2.0 - 1.0) * self.noise_ms).max(self.base_ms * 0.5)
    }

    /// Fleet statistic for Figures 10/12: the average over servers of
    /// per-server p99 at one minute. `loads` gives each server's
    /// `(primary_util, secondary_cores)`.
    pub fn fleet_p99_ms(&self, loads: &[(f64, u32)], seed: u64, minute: u64) -> f64 {
        if loads.is_empty() {
            return 0.0;
        }
        let sum: f64 = loads
            .iter()
            .enumerate()
            .map(|(s, &(util, cores))| {
                self.p99_noisy_ms(util, cores, seed, minute << 20 | s as u64)
            })
            .sum();
        sum / loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_figure_10_band() {
        let m = LatencyModel::paper_calibrated();
        // No harvesting, 33% utilization: 369-406 ms in the paper.
        let p = m.p99_ms(0.33, 0);
        assert!((360.0..=410.0).contains(&p), "p99 {p} outside band");
    }

    #[test]
    fn harvesting_all_cores_saturates() {
        let m = LatencyModel::paper_calibrated();
        assert_eq!(m.p99_ms(0.33, 12), m.cap_ms);
        // Stock-like harvesting (10 cores at 33% primary) is painful.
        assert!(m.p99_ms(0.33, 10) > 1_000.0);
    }

    #[test]
    fn reserve_respecting_harvest_is_benign() {
        let m = LatencyModel::paper_calibrated();
        let baseline = m.p99_ms(0.33, 0);
        // With the 4-core reserve intact (primary 4 cores + secondary 8
        // leaves exactly demand available) latency grows but far less
        // than saturation; at lower secondary usage it's nearly flat.
        let with_reserve = m.p99_ms(0.33, 4);
        assert!(with_reserve - baseline < 120.0);
        assert!(with_reserve >= baseline);
    }

    #[test]
    fn monotone_in_both_inputs() {
        let m = LatencyModel::paper_calibrated();
        let mut last = 0.0;
        for u in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
            let p = m.p99_ms(u, 0);
            assert!(p >= last, "not monotone in util");
            last = p;
        }
        let mut last = 0.0;
        for c in 0..=12u32 {
            let p = m.p99_ms(0.4, c);
            assert!(p >= last, "not monotone in secondary cores");
            last = p;
        }
    }

    #[test]
    fn noise_is_bounded_and_deterministic() {
        let m = LatencyModel::paper_calibrated();
        let clean = m.p99_ms(0.3, 2);
        let a = m.p99_noisy_ms(0.3, 2, 42, 7);
        let b = m.p99_noisy_ms(0.3, 2, 42, 7);
        assert_eq!(a, b);
        assert!((a - clean).abs() <= m.noise_ms + 1e-12);
    }

    #[test]
    fn fleet_average_between_extremes() {
        let m = LatencyModel::paper_calibrated();
        let loads = [(0.2, 0u32), (0.6, 0u32)];
        let fleet = m.fleet_p99_ms(&loads, 1, 0);
        let lo = m.p99_ms(0.2, 0) - m.noise_ms;
        let hi = m.p99_ms(0.6, 0) + m.noise_ms;
        assert!(fleet > lo && fleet < hi);
        assert_eq!(m.fleet_p99_ms(&[], 1, 0), 0.0);
    }

    #[test]
    fn imbalance_raises_fleet_p99() {
        // Convexity: the same total harvested cores hurt more when
        // concentrated — the mechanism behind YARN-H's balanced placement
        // improving tail latency.
        let m = LatencyModel::paper_calibrated();
        let balanced = [(0.5, 3u32), (0.5, 3u32)];
        let skewed = [(0.5, 6u32), (0.5, 0u32)];
        assert!(m.fleet_p99_ms(&skewed, 0, 0) > m.fleet_p99_ms(&balanced, 0, 0));
    }
}
