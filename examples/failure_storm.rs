//! Replay the durability experiment under every named fault profile and
//! show the failure-handling machinery working: detection (heartbeat
//! timeouts turn crashes into repair work), bounded retry with
//! exponential backoff (fault-aborted repairs come back), and graceful
//! degradation (exhausted retry budgets become permanent loss).
//!
//! ```sh
//! cargo run --release --example failure_storm
//! ```
//!
//! The fault-free baseline runs first; each profile then reuses the
//! same datacenter and seed, so every difference in the table is the
//! injected faults. The correlated-storm run is recorded and its
//! `dfs/repair` blame line printed — `failed`/`retrying` time shows up
//! as attributable wait states, and the analyzer's conservation check
//! (states tile each entity's lifetime) must pass on the faulted trace.

use harvest::cluster::Datacenter;
use harvest::dfs::durability::{
    simulate_durability, simulate_durability_recorded, DurabilityConfig,
};
use harvest::dfs::placement::PlacementPolicy;
use harvest::net::NetworkConfig;
use harvest::prelude::DatacenterProfile;
use harvest::sim::fault::{ClusterShape, FaultEvent, FaultKind, FaultPlan, FaultProfile};
use harvest::sim::obs::Recorder;
use harvest::sim::{SimDuration, SimTime};

fn main() {
    let seed = 42;
    let months = 6;
    let profile = DatacenterProfile::dc(9).scaled(0.03);
    let dc = Datacenter::generate(&profile, seed);
    let shape = ClusterShape {
        n_servers: dc.n_servers(),
        rack_size: harvest::cluster::datacenter::RACK_SIZE as usize,
    };
    let horizon = SimDuration::from_days(30 * months as u64);
    println!(
        "{}: {} servers in {} racks, Stock R=3, {months} months\n",
        dc.name,
        dc.n_servers(),
        dc.n_racks(),
    );

    let run = |faults: FaultPlan| {
        let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, seed);
        cfg.months = months;
        cfg.faults = faults;
        simulate_durability(&dc, &cfg)
    };

    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "profile", "faults", "aborted", "retried", "gave up", "lost blks", "lost %"
    );
    let baseline = run(FaultPlan::none());
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8.3}",
        "(none)",
        baseline.faults_injected,
        baseline.repairs_aborted,
        baseline.fault_retries,
        baseline.retries_exhausted,
        baseline.lost_blocks,
        baseline.lost_percent,
    );
    for p in FaultProfile::ALL {
        let r = run(p.plan(seed, shape, horizon));
        println!(
            "{:<18} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8.3}",
            p.name(),
            r.faults_injected,
            r.repairs_aborted,
            r.fault_retries,
            r.retries_exhausted,
            r.lost_blocks,
            r.lost_percent,
        );
        assert!(r.faults_injected > 0, "{} never fired", p.name());
        // Correlated loss must cost blocks. Scattered single-disk
        // failures can come out slightly *ahead* of the baseline: each
        // one triggers immediate re-replication, which happens to move
        // replicas off servers a later reimage would have wiped — so no
        // blanket "faults always hurt" assertion here.
        if p == FaultProfile::RackLoss {
            assert!(
                r.lost_blocks > baseline.lost_blocks,
                "a rack power loss must cost blocks"
            );
        }
    }

    // Retries earn their keep. Without a transfer model repairs are
    // instant — there is never anything in flight for a fault to abort
    // (the "aborted" column above) — so this stage prices repairs over
    // a slow fabric that keeps a standing population of transfers in
    // flight, then lands a storm on them: rack 0 dies for good near
    // the end of the month, and mid-way through its repair storm two
    // more racks brown out for five minutes. The brown-outs are
    // shorter than the heartbeat window, so no re-replication is ever
    // queued for their aborted transfers — the backoff retry is the
    // only path that finishes those repairs, which is exactly what the
    // max_retries = 0 comparison measures.
    // A smaller cluster keeps the two priced month-long runs quick.
    let small = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.01), seed);
    let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, seed);
    cfg.months = 1;
    cfg.network = Some(NetworkConfig {
        nic_gbps: 0.1,
        oversubscription: 4.0,
        ..NetworkConfig::datacenter()
    });
    let h = SimTime::ZERO + SimDuration::from_days(28);
    let mut events = vec![FaultEvent {
        at: h + SimDuration::from_hours(1),
        kind: FaultKind::RackPowerLoss { rack: 0 },
    }];
    for rack in [1u32, 2] {
        events.push(FaultEvent {
            at: h + SimDuration::from_mins(90),
            kind: FaultKind::RackPowerLoss { rack },
        });
        events.push(FaultEvent {
            at: h + SimDuration::from_mins(95),
            kind: FaultKind::RackPowerRestore { rack },
        });
    }
    let plan = FaultPlan::with_events(events);
    let mut with_cfg = cfg.clone();
    with_cfg.faults = plan.clone();
    let mut without_cfg = cfg.clone();
    without_cfg.faults = plan;
    without_cfg.faults.max_retries = 0;
    let with_retries = simulate_durability(&small, &with_cfg);
    let without = simulate_durability(&small, &without_cfg);
    println!(
        "\nstaged storm on {} servers over a slow fabric \
         ({} transfers aborted mid-flight):",
        small.n_servers(),
        with_retries.repairs_aborted,
    );
    println!(
        "  with backoff retries:  {:>6} repairs finished, {:>4} blocks lost \
         ({} retried)",
        with_retries.repairs, with_retries.lost_blocks, with_retries.fault_retries,
    );
    println!(
        "  max_retries = 0:       {:>6} repairs finished, {:>4} blocks lost \
         ({} budgets exhausted)",
        without.repairs, without.lost_blocks, without.retries_exhausted,
    );
    assert!(
        with_retries.repairs_aborted > 0,
        "storm never aborted an in-flight repair"
    );
    assert!(
        with_retries.repairs > without.repairs,
        "backoff retries must finish repairs a zero budget abandons"
    );
    assert!(
        with_retries.lost_blocks <= without.lost_blocks,
        "retries must not lose more blocks than giving up"
    );

    // Record the correlated storm and ask the analyzer where repair
    // time went. Faulted traces must still conserve: every entity's
    // states — `failed` and `retrying` included — tile its lifetime.
    let mut cfg = DurabilityConfig::paper(PlacementPolicy::Stock, 3, seed);
    cfg.months = months;
    cfg.faults = FaultProfile::CorrelatedStorm.plan(seed, shape, horizon);
    let (_, rec) = simulate_durability_recorded(&dc, &cfg, Recorder::new("failure-storm"));
    let analysis =
        harvest::sim::obs::analyze::analyze_recorder(&rec).expect("faulted trace analyzes");
    assert!(
        analysis.conserved(),
        "faulted trace failed the state-conservation check"
    );
    if let Some(s) = analysis.states.iter().find(|s| s.name == "dfs/repair") {
        println!("\ncorrelated-storm repair blame: {}", s.blame_line());
    }
    println!("(conservation check passed on the faulted trace)");
}
