//! Placement-quality monitoring (§7, lesson 3: "Data durability is
//! king").
//!
//! The production deployment learned to "monitor the quality of
//! placements and stop consuming more space when diversity becomes low".
//! This module measures how well a store's placements satisfy Algorithm
//! 2's constraints and implements that stop rule.

use harvest_cluster::{Datacenter, ServerId};

use crate::grid::Grid2D;
use crate::store::BlockStore;

/// Measured placement quality of a block population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementQuality {
    /// Blocks inspected.
    pub blocks: u64,
    /// Blocks with two replicas in one environment.
    pub env_violations: u64,
    /// Blocks with two replicas in the same grid row or column (within
    /// the block's first round of three replicas).
    pub grid_violations: u64,
    /// Fraction of inspected blocks with no violations.
    pub diversity: f64,
}

/// Measures the quality of every block's placement in the store.
pub fn measure_quality(dc: &Datacenter, grid: &Grid2D, store: &BlockStore) -> PlacementQuality {
    let mut env_violations = 0u64;
    let mut grid_violations = 0u64;
    let n = store.n_blocks() as u64;
    for b in 0..store.n_blocks() {
        let replicas = store.replicas(crate::store::BlockId(b as u64));
        if replicas.len() < 2 {
            continue;
        }
        let mut envs: Vec<usize> = Vec::with_capacity(replicas.len());
        let mut cells = Vec::with_capacity(replicas.len());
        for &s in replicas {
            let tenant = dc.tenant_of(ServerId(s));
            envs.push(tenant.environment);
            cells.push(grid.cell_of(tenant.id));
        }
        let mut env_bad = false;
        for i in 0..envs.len() {
            for j in i + 1..envs.len() {
                if envs[i] == envs[j] {
                    env_bad = true;
                }
            }
        }
        if env_bad {
            env_violations += 1;
        }
        // Check rows/columns within the first round of three replicas.
        let round = &cells[..cells.len().min(3)];
        let mut grid_bad = false;
        for i in 0..round.len() {
            for j in i + 1..round.len() {
                if round[i].row == round[j].row || round[i].col == round[j].col {
                    grid_bad = true;
                }
            }
        }
        if grid_bad {
            grid_violations += 1;
        }
    }
    let clean = n - env_violations.max(grid_violations).min(n);
    PlacementQuality {
        blocks: n,
        env_violations,
        grid_violations,
        diversity: if n == 0 { 1.0 } else { clean as f64 / n as f64 },
    }
}

/// The production stop rule: refuse new blocks once measured diversity
/// drops below a floor ("by default, we now monitor the quality of
/// placements and stop consuming more space when diversity becomes
/// low").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMonitor {
    /// Minimum acceptable diversity fraction.
    pub min_diversity: f64,
}

impl Default for QualityMonitor {
    fn default() -> Self {
        QualityMonitor {
            min_diversity: 0.95,
        }
    }
}

impl QualityMonitor {
    /// Whether block creation should stop at the measured quality.
    pub fn should_stop(&self, quality: &PlacementQuality) -> bool {
        quality.diversity < self.min_diversity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlacementPolicy, Placer};
    use harvest_cluster::Datacenter;
    use harvest_sim::rng::stream_rng;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.05), 3)
    }

    #[test]
    fn history_placements_are_diverse() {
        // Enough tenants that every grid cell has several members; with
        // too few tenants Algorithm 2 legitimately relaxes constraints.
        let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.2), 3);
        let placer = Placer::new(&dc, PlacementPolicy::History);
        let mut store = BlockStore::new(&dc);
        let mut rng = stream_rng(1, "q");
        for i in 0..2_000u32 {
            let writer = ServerId(i % dc.n_servers() as u32);
            if let Some(p) = placer.place_new(&mut rng, &store, writer, 3, None) {
                store.create_block(&p.servers);
            }
        }
        let q = measure_quality(&dc, placer.grid().unwrap(), &store);
        assert!(q.blocks >= 1_900);
        assert!(q.diversity > 0.98, "diversity {}", q.diversity);
        assert!(!QualityMonitor::default().should_stop(&q));
    }

    #[test]
    fn stock_placements_violate_constraints() {
        let dc = dc();
        let placer = Placer::new(&dc, PlacementPolicy::Stock);
        let grid = Grid2D::build(&dc);
        let mut store = BlockStore::new(&dc);
        let mut rng = stream_rng(2, "q2");
        for i in 0..2_000u32 {
            let writer = ServerId(i % dc.n_servers() as u32);
            if let Some(p) = placer.place_new(&mut rng, &store, writer, 3, None) {
                store.create_block(&p.servers);
            }
        }
        let q = measure_quality(&dc, &grid, &store);
        // Rack-local second replicas usually share the writer's tenant
        // (hence environment and cell), so stock diversity is poor.
        assert!(q.diversity < 0.6, "stock diversity {}", q.diversity);
        assert!(QualityMonitor::default().should_stop(&q));
    }

    #[test]
    fn empty_store_is_perfectly_diverse() {
        let dc = dc();
        let grid = Grid2D::build(&dc);
        let store = BlockStore::new(&dc);
        let q = measure_quality(&dc, &grid, &store);
        assert_eq!(q.blocks, 0);
        assert_eq!(q.diversity, 1.0);
    }
}
