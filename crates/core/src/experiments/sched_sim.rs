//! Figures 13–14: datacenter-scale scheduling simulations (§6.4).
//!
//! The paper sweeps average utilization by scaling every tenant's trace
//! (linearly and by roots), then compares YARN-PT against YARN-H/Tez-H
//! on one month of batch jobs. Job lengths and container usage are
//! multiplied by a scaling factor "to generate enough load … while
//! limiting the simulation time"; this reproduction does the same
//! (durations ×16) and sizes the arrival rate so the batch workload
//! offers a fixed fraction of cluster capacity at any cluster size.

use harvest_cluster::{Datacenter, UtilizationView};
use harvest_jobs::tpcds::{scale_job, tpcds_suite};
use harvest_jobs::workload::Workload;
use harvest_sched::policy::SchedPolicy;
use harvest_sched::sim::{SchedSim, SchedSimConfig, TickSweep};
use harvest_sim::obs::json;
use harvest_sim::par::par_map;
use harvest_sim::rng::stream_rng;
use harvest_sim::supervise::CancelToken;
use harvest_sim::SimDuration;
use harvest_trace::datacenter::DatacenterProfile;
use harvest_trace::scaling::{calibrate, ScalingKind};

use crate::checkpoint::{self, get_f64, get_u64, hex_f64, hex_u64, obj, Journaled};
use crate::report::{num, pct, Table};
use crate::scale::Scale;

/// Task-duration multiplier for the simulated (non-testbed) workload.
const DURATION_FACTOR: f64 = 16.0;

/// Fraction of total cluster cores the batch workload offers. Kept
/// moderate so task kills — not queueing for containers — dominate the
/// PT-vs-H comparison, as on the paper's testbed.
const BATCH_DEMAND: f64 = 0.05;

/// One sweep point: mean execution times under both schedulers.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Target mean utilization.
    pub utilization: f64,
    /// Trace scaling used.
    pub scaling: ScalingKind,
    /// Mean job execution seconds under YARN-PT.
    pub pt_secs: f64,
    /// Mean job execution seconds under YARN-H/Tez-H.
    pub h_secs: f64,
    /// Superseded shuffle-completion events dropped across both policy
    /// runs, fabric plus disks (0 with the transfer models off).
    pub stale_events_dropped: u64,
    /// Largest event-heap high-water mark either policy run reached.
    pub peak_queue_len: usize,
}

impl SweepPoint {
    /// YARN-H's improvement over YARN-PT, in percent.
    pub fn improvement(&self) -> f64 {
        if self.pt_secs <= 0.0 {
            0.0
        } else {
            (1.0 - self.h_secs / self.pt_secs) * 100.0
        }
    }
}

impl Journaled for SweepPoint {
    fn encode(&self) -> String {
        let scaling = match self.scaling {
            ScalingKind::Linear => 0u64,
            ScalingKind::Root => 1,
        };
        obj(&[
            ("util", hex_f64(self.utilization)),
            ("scaling", hex_u64(scaling)),
            ("pt", hex_f64(self.pt_secs)),
            ("h", hex_f64(self.h_secs)),
            ("stale", hex_u64(self.stale_events_dropped)),
            ("peak", hex_u64(self.peak_queue_len as u64)),
        ])
    }

    fn decode(v: &json::Value) -> Option<Self> {
        let scaling = match get_u64(v, "scaling")? {
            0 => ScalingKind::Linear,
            1 => ScalingKind::Root,
            _ => return None,
        };
        Some(SweepPoint {
            utilization: get_f64(v, "util")?,
            scaling,
            pt_secs: get_f64(v, "pt")?,
            h_secs: get_f64(v, "h")?,
            stale_events_dropped: get_u64(v, "stale")?,
            peak_queue_len: get_u64(v, "peak")? as usize,
        })
    }
}

/// Builds the (scaled utilization view, Poisson workload) pair one
/// sweep point simulates over — shared by the comparison runs and the
/// recorded blame run so they see bitwise-identical inputs.
fn sweep_inputs(
    dc: &Datacenter,
    scaling: ScalingKind,
    utilization: f64,
    hours: u64,
    seed: u64,
) -> (UtilizationView, Workload) {
    let traces: Vec<_> = dc.tenants.iter().map(|t| &t.trace).collect();
    let param = calibrate(&traces, scaling, utilization);
    let view = UtilizationView::scaled(dc, scaling, param);

    // Size the arrival rate to the cluster: mean job work (core-seconds)
    // divided into the target demand share of cluster cores.
    let suite: Vec<_> = tpcds_suite()
        .iter()
        .map(|q| scale_job(q, DURATION_FACTOR, 1.0))
        .collect();
    let mean_work: f64 = suite
        .iter()
        .map(|q| q.total_work().as_secs_f64())
        .sum::<f64>()
        / suite.len() as f64;
    let cluster_cores = dc.n_servers() as f64 * 12.0;
    let mean_gap = SimDuration::from_secs_f64(mean_work / (BATCH_DEMAND * cluster_cores));

    let horizon = SimDuration::from_hours(hours);
    let mut wl_rng = stream_rng(seed, "sweep-wl");
    let workload = Workload::poisson(&mut wl_rng, suite, mean_gap, horizon);
    (view, workload)
}

/// Runs one (datacenter, scaling, utilization, run) comparison point.
///
/// `cancel` is the supervising harness's cooperative cancellation
/// token, polled by the scheduling event loop at tick granularity; a
/// cancelled point returns early with a partial (discarded) result.
#[allow(clippy::too_many_arguments)]
pub fn sweep_point(
    dc: &Datacenter,
    scaling: ScalingKind,
    utilization: f64,
    hours: u64,
    seed: u64,
    network: Option<harvest_net::NetworkConfig>,
    disk: Option<harvest_disk::DiskConfig>,
    sharing: harvest_net::SharingMode,
    sweep: TickSweep,
    cancel: &CancelToken,
) -> SweepPoint {
    let (view, workload) = sweep_inputs(dc, scaling, utilization, hours, seed);
    let horizon = SimDuration::from_hours(hours);

    let run = |policy: SchedPolicy| -> (f64, u64, usize) {
        let mut cfg = SchedSimConfig::testbed(policy, seed);
        cfg.horizon = horizon;
        cfg.drain = horizon; // generous drain so every job can finish
        cfg.network = network;
        cfg.disk = disk;
        cfg.sharing = sharing;
        cfg.sweep = sweep;
        cfg.cancel = cancel.clone();
        let stats = SchedSim::new(dc, &view, &workload, cfg).run();
        let stale = stats.fabric.map_or(0, |f| f.stale_events_dropped)
            + stats.disks.map_or(0, |d| d.stale_events_dropped);
        let peak = stats
            .fabric
            .map_or(0, |f| f.peak_queue_len)
            .max(stats.disks.map_or(0, |d| d.peak_queue_len));
        (stats.mean_execution_secs(), stale, peak)
    };

    let (pt_secs, pt_stale, pt_peak) = run(SchedPolicy::PrimaryAware);
    let (h_secs, h_stale, h_peak) = run(SchedPolicy::History);
    SweepPoint {
        utilization,
        scaling,
        pt_secs,
        h_secs,
        stale_events_dropped: pt_stale + h_stale,
        peak_queue_len: pt_peak.max(h_peak),
    }
}

/// Replays one sweep point's YARN-PT run with a local recorder and
/// distills the `sched/stage` wait-state track into its one-line blame
/// split (e.g. `"74.2% running, 21.3% blocked_on_net, 4.5% queued"`).
/// The split is pure sim time, so the line is identical at any `--jobs`
/// setting and whether or not the caller records — figure notes can
/// embed it without breaking stdout byte-comparability.
#[allow(clippy::too_many_arguments)]
pub fn stage_blame(
    dc: &Datacenter,
    scaling: ScalingKind,
    utilization: f64,
    hours: u64,
    seed: u64,
    network: Option<harvest_net::NetworkConfig>,
    disk: Option<harvest_disk::DiskConfig>,
    sharing: harvest_net::SharingMode,
    sweep: TickSweep,
) -> Option<String> {
    let (view, workload) = sweep_inputs(dc, scaling, utilization, hours, seed);
    let horizon = SimDuration::from_hours(hours);
    let mut cfg = SchedSimConfig::testbed(SchedPolicy::PrimaryAware, seed);
    cfg.horizon = horizon;
    cfg.drain = horizon;
    cfg.network = network;
    cfg.disk = disk;
    cfg.sharing = sharing;
    cfg.sweep = sweep;
    let mut rec = harvest_sim::obs::Recorder::new("blame");
    let _ = SchedSim::new(dc, &view, &workload, cfg).run_recorded(&mut rec);
    let analysis = harvest_sim::obs::analyze::analyze_recorder(&rec).ok()?;
    analysis
        .states
        .iter()
        .find(|s| s.name == "sched/stage")
        .map(|s| s.blame_line())
}

/// Figure 13: DC-9's batch run times across the utilization spectrum.
///
/// The (scaling × utilization × run) matrix is flattened into
/// independent [`sweep_point`] tasks over `scale.jobs` workers; each
/// task derives its own seed stream and shares only the read-only
/// datacenter, and aggregation replays the sequential order — the
/// report is byte-identical at any thread count.
pub fn fig13(scale: &Scale) -> String {
    let profile = DatacenterProfile::dc(9).scaled(scale.dc_scale);
    let dc = Datacenter::generate(&profile, scale.seed);

    let mut table = Table::new(
        format!(
            "Figure 13: batch execution time vs utilization, DC-9 ({} servers)",
            dc.n_servers()
        ),
        &[
            "scaling",
            "utilization",
            "YARN-PT (s)",
            "YARN-H (s)",
            "improvement",
        ],
    );
    struct Task {
        scaling: ScalingKind,
        util: f64,
        r: usize,
    }
    let mut tasks = Vec::with_capacity(2 * scale.utilizations.len() * scale.runs);
    for scaling in [ScalingKind::Linear, ScalingKind::Root] {
        for &util in &scale.utilizations {
            for r in 0..scale.runs {
                tasks.push(Task { scaling, util, r });
            }
        }
    }
    // Supervised, checkpointable sweep keyed by the task's stable
    // (scaling, utilization, run) coordinates.
    let swept = checkpoint::sweep(
        scale,
        "fig13",
        &tasks,
        |t| format!("{}/u{:.2}/r{}", t.scaling, t.util, t.r),
        |t, cancel| {
            sweep_point(
                &dc,
                t.scaling,
                t.util,
                scale.sched_hours,
                scale.run_seed("fig13", t.r),
                scale.network,
                scale.disk,
                scale.sharing,
                scale.tick_sweep,
                cancel,
            )
        },
    );
    let points = swept.results;

    let mut stale_total = 0u64;
    let mut peak_queue = 0usize;
    let mut chunks = points.chunks_exact(scale.runs);
    for scaling in [ScalingKind::Linear, ScalingKind::Root] {
        for &util in &scale.utilizations {
            let runs = chunks.next().expect("one chunk per sweep point");
            // Quarantined/cancelled runs are `None`: average over the
            // present ones (all of them on a clean run, so the division
            // is bitwise identical to the unsupervised path).
            let mut pt = 0.0;
            let mut h = 0.0;
            let mut n = 0usize;
            for p in runs.iter().flatten() {
                pt += p.pt_secs;
                h += p.h_secs;
                stale_total += p.stale_events_dropped;
                peak_queue = peak_queue.max(p.peak_queue_len);
                n += 1;
            }
            let point = SweepPoint {
                utilization: util,
                scaling,
                pt_secs: pt / n as f64,
                h_secs: h / n as f64,
                stale_events_dropped: 0,
                peak_queue_len: 0,
            };
            table.row(&[
                scaling.to_string(),
                num(util, 2),
                num(point.pt_secs, 0),
                num(point.h_secs, 0),
                pct(point.improvement()),
            ]);
        }
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    table.note("paper: YARN-H/Tez-H reduces DC-9 execution time by 0-55% under linear scaling and 3-41% under root scaling, with both systems degrading as utilization rises");
    if scale.network.is_some() || scale.disk.is_some() {
        table.note(format!(
            "transfer-model churn: {stale_total} superseded completion events dropped, \
             peak event heap {peak_queue}"
        ));
    }
    // Where the stages' time went, from one recorded mid-utilization
    // YARN-PT run (linear scaling, run 0's seed) — deterministic, so
    // the report stays byte-identical across --jobs and recording.
    let mid = scale.utilizations[scale.utilizations.len() / 2];
    if let Some(line) = stage_blame(
        &dc,
        ScalingKind::Linear,
        mid,
        scale.sched_hours,
        scale.run_seed("fig13", 0),
        scale.network,
        scale.disk,
        scale.sharing,
        scale.tick_sweep,
    ) {
        table.note(format!(
            "stage blame (YARN-PT, linear @ {} utilization): {line}",
            num(mid, 2)
        ));
    }
    table.render()
}

/// Figure 14: YARN-H's run-time improvements across all ten datacenters.
pub fn fig14(scale: &Scale) -> String {
    let mut table = Table::new(
        "Figure 14: YARN-H/Tez-H run-time improvement per datacenter",
        &["datacenter", "scaling", "min", "avg", "max"],
    );
    // Sweep a reduced utilization set per DC to bound single-core time.
    // Use the middle of the range: at the bottom both schedulers are
    // unconstrained, and at the top container queueing saturates both,
    // so the history signal is clearest mid-spectrum. Use at least two
    // runs per point — single-run noise at this scale is comparable to
    // the effect size.
    let utils: Vec<f64> = vec![scale.utilizations[scale.utilizations.len() / 2]];
    let runs = scale.runs.max(2);

    // Shared read-only state first: the ten datacenters, generated in
    // parallel (each deterministically from its own profile + seed).
    let dc_ids: Vec<usize> = (0..10).collect();
    let dcs: Vec<Datacenter> = par_map(scale.jobs, &dc_ids, |&dc_id| {
        let profile = DatacenterProfile::dc(dc_id).scaled(scale.dc_scale);
        Datacenter::generate(&profile, scale.seed)
    });

    // Then the flattened (dc × scaling × util × run) sweep matrix.
    struct Task {
        dc_id: usize,
        scaling: ScalingKind,
        util: f64,
        r: usize,
    }
    let mut tasks = Vec::with_capacity(10 * 2 * utils.len() * runs);
    for dc_id in 0..10 {
        for scaling in [ScalingKind::Linear, ScalingKind::Root] {
            for &util in &utils {
                for r in 0..runs {
                    tasks.push(Task {
                        dc_id,
                        scaling,
                        util,
                        r,
                    });
                }
            }
        }
    }
    let swept = checkpoint::sweep(
        scale,
        "fig14",
        &tasks,
        |t| format!("dc{}/{}/u{:.2}/r{}", t.dc_id, t.scaling, t.util, t.r),
        |t, cancel| {
            sweep_point(
                &dcs[t.dc_id],
                t.scaling,
                t.util,
                scale.sched_hours,
                scale.run_seed("fig14", t.dc_id * 100 + t.r),
                scale.network,
                scale.disk,
                scale.sharing,
                scale.tick_sweep,
                cancel,
            )
        },
    );
    let points = swept.results;

    let mut low_var = Vec::new(); // DC-0, DC-2 improvements
    let mut high_var = Vec::new(); // DC-1, DC-4 improvements
    let mut chunks = points.chunks_exact(utils.len() * runs);
    for dc_id in 0..10 {
        for scaling in [ScalingKind::Linear, ScalingKind::Root] {
            let imps: Vec<f64> = chunks
                .next()
                .expect("one chunk per (dc, scaling)")
                .iter()
                .flatten()
                .map(|p| p.improvement())
                .collect();
            let (min, max, avg) = if imps.is_empty() {
                (f64::NAN, f64::NAN, f64::NAN)
            } else {
                (
                    imps.iter().cloned().fold(f64::MAX, f64::min),
                    imps.iter().cloned().fold(f64::MIN, f64::max),
                    imps.iter().sum::<f64>() / imps.len() as f64,
                )
            };
            if scaling == ScalingKind::Linear {
                if dc_id == 0 || dc_id == 2 {
                    low_var.push(avg);
                }
                if dc_id == 1 || dc_id == 4 {
                    high_var.push(avg);
                }
            }
            table.row(&[
                format!("DC-{dc_id}"),
                scaling.to_string(),
                pct(min),
                pct(avg),
                pct(max),
            ]);
        }
    }
    if let Some(note) = swept.note {
        table.note(note);
    }
    let low = low_var.iter().sum::<f64>() / low_var.len().max(1) as f64;
    let high = high_var.iter().sum::<f64>() / high_var.len().max(1) as f64;
    table.note("paper: average improvements of 12-56% (linear) and 5-45% (root); lowest for DC-0/DC-2 (least utilization variation), highest for DC-1/DC-4 (most), maxima ~90%/~70%");
    table.note(format!(
        "measured (linear): low-variation DCs avg {} vs high-variation DCs avg {}",
        pct(low),
        pct(high)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_point_improvement_math() {
        let p = SweepPoint {
            utilization: 0.5,
            scaling: ScalingKind::Linear,
            pt_secs: 1_000.0,
            h_secs: 800.0,
            stale_events_dropped: 0,
            peak_queue_len: 0,
        };
        assert!((p.improvement() - 20.0).abs() < 1e-12);
        let zero = SweepPoint { pt_secs: 0.0, ..p };
        assert_eq!(zero.improvement(), 0.0);
    }

    #[test]
    fn history_improves_on_pt_at_moderate_utilization() {
        let profile = DatacenterProfile::dc(9).scaled(0.03);
        let dc = Datacenter::generate(&profile, 42);
        let p = sweep_point(
            &dc,
            ScalingKind::Linear,
            0.45,
            8,
            7,
            None,
            None,
            Default::default(),
            TickSweep::Incremental,
            &CancelToken::new(),
        );
        assert!(p.pt_secs > 0.0 && p.h_secs > 0.0);
        assert!(
            p.improvement() > -10.0,
            "YARN-H catastrophically worse: {:?}",
            p
        );
    }
}
