//! Utilization playback: "what is this server's primary CPU utilization
//! at time T?"
//!
//! A [`UtilizationView`] holds the (optionally scaled) tenant traces and
//! answers per-server lookups. Servers of the same tenant share the
//! tenant's "average server" trace plus a small deterministic per-server
//! jitter, reflecting §3.2's observation that load "is not always evenly
//! balanced across all servers of a primary tenant".

use harvest_sim::rng::splitmix64;
use harvest_sim::SimTime;
use harvest_trace::scaling::{scale, ScalingKind};
use harvest_trace::timeseries::TimeSeries;

use crate::datacenter::Datacenter;
use crate::server::{ServerId, TenantId};

/// Default per-server jitter amplitude around the tenant trace.
pub const DEFAULT_JITTER: f64 = 0.01;

/// A scaled, queryable view of every tenant's utilization.
#[derive(Debug, Clone)]
pub struct UtilizationView {
    traces: Vec<TimeSeries>,
    server_tenant: Vec<u32>,
    jitter_amp: f64,
    jitter_seed: u64,
}

impl UtilizationView {
    /// A view of the unscaled traces.
    pub fn unscaled(dc: &Datacenter) -> Self {
        Self::build(dc, None, DEFAULT_JITTER, 0)
    }

    /// A view with the given scaling applied to every tenant trace.
    pub fn scaled(dc: &Datacenter, kind: ScalingKind, param: f64) -> Self {
        Self::build(dc, Some((kind, param)), DEFAULT_JITTER, 0)
    }

    /// Full-control constructor.
    pub fn build(
        dc: &Datacenter,
        scaling: Option<(ScalingKind, f64)>,
        jitter_amp: f64,
        jitter_seed: u64,
    ) -> Self {
        let traces = dc
            .tenants
            .iter()
            .map(|t| match scaling {
                Some((kind, param)) => scale(&t.trace, kind, param),
                None => t.trace.clone(),
            })
            .collect();
        UtilizationView {
            traces,
            server_tenant: dc.servers.iter().map(|s| s.tenant.0).collect(),
            jitter_amp,
            jitter_seed,
        }
    }

    /// The tenant's (average-server) utilization at `t`.
    pub fn tenant_util(&self, tenant: TenantId, t: SimTime) -> f64 {
        self.traces[tenant.0 as usize].at(t)
    }

    /// The scaled trace of a tenant.
    pub fn tenant_trace(&self, tenant: TenantId) -> &TimeSeries {
        &self.traces[tenant.0 as usize]
    }

    /// The server's utilization at `t`: its tenant's trace plus the
    /// server's deterministic jitter, clamped to `[0, 1]`.
    pub fn server_util(&self, server: ServerId, t: SimTime) -> f64 {
        let tenant = self.server_tenant[server.0 as usize];
        let base = self.traces[tenant as usize].at(t);
        (base + self.jitter(server, t)).clamp(0.0, 1.0)
    }

    fn jitter(&self, server: ServerId, t: SimTime) -> f64 {
        if self.jitter_amp == 0.0 {
            return 0.0;
        }
        let slot = t.as_millis() / harvest_trace::SAMPLE_INTERVAL.as_millis();
        let h = splitmix64(
            self.jitter_seed
                ^ splitmix64(server.0 as u64)
                ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit * 2.0 - 1.0) * self.jitter_amp
    }

    /// Fleet-average utilization at `t` (per-server, without jitter —
    /// jitter is zero-mean so it would only add noise).
    pub fn fleet_util(&self, t: SimTime) -> f64 {
        if self.server_tenant.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .server_tenant
            .iter()
            .map(|&tid| self.traces[tid as usize].at(t))
            .sum();
        sum / self.server_tenant.len() as f64
    }

    /// Fleet-average of the tenants' mean utilization, server-weighted
    /// (the x-axis of Figures 13 and 16).
    pub fn mean_fleet_util(&self) -> f64 {
        if self.server_tenant.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .server_tenant
            .iter()
            .map(|&tid| self.traces[tid as usize].mean())
            .sum();
        sum / self.server_tenant.len() as f64
    }

    /// Number of tenants in the view.
    pub fn n_tenants(&self) -> usize {
        self.traces.len()
    }

    /// Number of servers in the view.
    pub fn n_servers(&self) -> usize {
        self.server_tenant.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_trace::datacenter::DatacenterProfile;

    fn dc() -> Datacenter {
        Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 7)
    }

    #[test]
    fn server_util_tracks_tenant_trace() {
        let dc = dc();
        let view = UtilizationView::build(&dc, None, 0.0, 0);
        let t = SimTime::from_secs(3_600);
        for s in &dc.servers {
            let su = view.server_util(s.id, t);
            let tu = view.tenant_util(s.tenant, t);
            assert_eq!(su, tu, "no jitter => identical");
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let dc = dc();
        let view = UtilizationView::unscaled(&dc);
        let t = SimTime::from_secs(7_200);
        for s in &dc.servers {
            let su = view.server_util(s.id, t);
            let tu = view.tenant_util(s.tenant, t);
            assert!((su - tu).abs() <= DEFAULT_JITTER + 1e-12);
            assert_eq!(su, view.server_util(s.id, t), "jitter not deterministic");
        }
    }

    #[test]
    fn scaling_changes_levels() {
        let dc = dc();
        let base = UtilizationView::unscaled(&dc);
        let doubled = UtilizationView::scaled(&dc, ScalingKind::Linear, 2.0);
        assert!(doubled.mean_fleet_util() > base.mean_fleet_util());
        let t = SimTime::from_secs(1_000);
        assert!(doubled.fleet_util(t) >= base.fleet_util(t) - 1e-9);
    }

    #[test]
    fn fleet_util_is_average_of_servers() {
        let dc = dc();
        let view = UtilizationView::build(&dc, None, 0.0, 0);
        let t = SimTime::from_secs(60);
        let manual: f64 = dc
            .servers
            .iter()
            .map(|s| view.server_util(s.id, t))
            .sum::<f64>()
            / dc.n_servers() as f64;
        assert!((view.fleet_util(t) - manual).abs() < 1e-9);
    }

    #[test]
    fn utils_stay_in_unit_interval() {
        let dc = dc();
        let view = UtilizationView::scaled(&dc, ScalingKind::Linear, 5.0);
        for hour in 0..48 {
            let t = SimTime::from_secs(hour * 3_600);
            for s in &dc.servers {
                let u = view.server_util(s.id, t);
                assert!((0.0..=1.0).contains(&u), "util {u} out of range");
            }
        }
    }
}
