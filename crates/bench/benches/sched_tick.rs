//! Scheduler tick-sweep scaling bench: a light batch workload on the
//! *unscaled* 14 386-server DC-9, change-driven ticks vs. the
//! full-fleet reference sweeps.
//!
//! The workload is deliberately small (a couple dozen TPC-DS jobs over
//! a five-hour horizon) so the per-event scheduling work is a sliver
//! and the run time is dominated by what this bench measures: the
//! two-minute tick. Under [`TickSweep::Full`] every tick sweeps all
//! 14 386 servers twice (primary disk-demand replay and reserve scan,
//! plus the fleet-utilization recompute) for ~210 ticks per run; under
//! [`TickSweep::Incremental`] a tick touches the occupied-server index,
//! the active-disk index, and one fleet-series lookup — O(changed +
//! occupied). Both runs must produce *identical* statistics (the
//! randomized oracle lives in tests/properties.rs; this bench asserts
//! the headline numbers agree as a belt-and-braces check at full
//! scale).
//!
//! Modes:
//! * default — measures both sweeps and (re)writes `BENCH_sched.json`
//!   at the workspace root: the recorded before (full) / after
//!   (incremental) baseline. The issue's acceptance bar is a ≥ 5×
//!   median speedup.
//! * `SCHED_TICK_SMOKE=1` — times each sweep (best of three, so a
//!   single noisy-neighbor blip on a shared runner cannot flake the
//!   ratio) and asserts the incremental tick beats the full-sweep
//!   reference by a healthy machine-independent margin (baseline ~11×;
//!   the floor is 3×), so a regression toward per-tick fleet sweeps
//!   fails the assert (and, belt-and-braces, CI's wrapping `timeout`
//!   bounds the absolute runtime).

use std::time::{Duration, Instant};

use harvest_cluster::{Datacenter, UtilizationView};
use harvest_disk::DiskConfig;
use harvest_jobs::tpcds::{scale_job, tpcds_suite};
use harvest_jobs::workload::Workload;
use harvest_sched::policy::SchedPolicy;
use harvest_sched::sim::{SchedSim, SchedSimConfig, TickSweep};
use harvest_sched::SimStats;
use harvest_sim::rng::stream_rng;
use harvest_sim::SimDuration;
use harvest_trace::datacenter::DatacenterProfile;
use std::hint::black_box;

/// Simulated-job duration multiplier (the paper's own simulation trick
/// to get testbed-like task lengths at datacenter scale).
const DURATION_FACTOR: f64 = 16.0;

/// Mean Poisson gap between job arrivals: ~20 jobs over five hours.
const ARRIVAL_GAP: SimDuration = SimDuration::from_secs(900);

const HORIZON: SimDuration = SimDuration::from_hours(5);
const DRAIN: SimDuration = SimDuration::from_hours(2);

fn config(sweep: TickSweep) -> SchedSimConfig {
    let mut cfg = SchedSimConfig::testbed(SchedPolicy::PrimaryAware, 42);
    cfg.horizon = HORIZON;
    cfg.drain = DRAIN;
    // Disks on: every tick must replay the primaries' disk demand,
    // which is the most expensive of the full sweeps.
    cfg.disk = Some(DiskConfig::datacenter());
    cfg.sweep = sweep;
    cfg
}

/// One full simulation run under `sweep`; returns (wall seconds, stats).
fn run_once(
    dc: &Datacenter,
    view: &UtilizationView,
    workload: &Workload,
    sweep: TickSweep,
) -> (f64, SimStats) {
    let sim = SchedSim::new(dc, view, workload, config(sweep));
    let t0 = Instant::now();
    let stats = black_box(sim.run());
    (t0.elapsed().as_secs_f64(), stats)
}

/// Median wall-clock seconds over `iters` runs, plus the last run's
/// stats (every run is deterministic, so any run's stats stand for
/// all; the outcome assertions live in `main`).
fn measure(
    dc: &Datacenter,
    view: &UtilizationView,
    workload: &Workload,
    sweep: TickSweep,
    iters: usize,
) -> (f64, SimStats) {
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let (secs, stats) = run_once(dc, view, workload, sweep);
        samples.push(Duration::from_secs_f64(secs));
        last = Some(stats);
    }
    samples.sort();
    (
        samples[samples.len() / 2].as_secs_f64(),
        last.expect("iters >= 1"),
    )
}

fn main() {
    let profile = DatacenterProfile::dc(9);
    let dc = Datacenter::generate(&profile, 42);
    let view = UtilizationView::unscaled(&dc);
    let suite: Vec<_> = tpcds_suite()
        .iter()
        .map(|q| scale_job(q, DURATION_FACTOR, 1.0))
        .collect();
    let mut wl_rng = stream_rng(42, "sched-tick-wl");
    let workload = Workload::poisson(&mut wl_rng, suite, ARRIVAL_GAP, HORIZON);
    let ticks = (HORIZON + DRAIN).as_millis() / SimDuration::from_mins(2).as_millis();
    println!(
        "sched_tick bench: unscaled {} ({} servers), {} jobs over {}h + {}h drain, {} ticks",
        profile.name(),
        dc.n_servers(),
        workload.n_jobs(),
        HORIZON.as_hours_f64(),
        DRAIN.as_hours_f64(),
        ticks,
    );

    if std::env::var_os("SCHED_TICK_SMOKE").is_some() {
        // CI budget guard: the speedup floor is machine-independent
        // (both modes share the machine), sized far below the ~11x
        // baseline in BENCH_sched.json but far above the ~1x a
        // regression toward per-tick fleet sweeps would produce. Best
        // of three per mode: the incremental run is milliseconds, so a
        // single descheduling blip must not decide the ratio.
        let floor = 3.0;
        let best = |sweep: TickSweep| -> (f64, SimStats) {
            (0..3)
                .map(|_| run_once(&dc, &view, &workload, sweep))
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("three runs")
        };
        let (full, full_stats) = best(TickSweep::Full);
        let (incr, incr_stats) = best(TickSweep::Incremental);
        println!("bench sched_tick/dc9_full                   {full:>10.3}s (smoke, best of 3)");
        println!("bench sched_tick/dc9_incremental            {incr:>10.3}s (smoke, best of 3)");
        assert!(incr_stats.tasks_started > 0, "smoke run placed nothing");
        assert_eq!(
            full_stats.tasks_started, incr_stats.tasks_started,
            "sweep modes placed different task counts"
        );
        assert!(
            full / incr >= floor,
            "incremental ticks only {:.1}x faster than the full-sweep reference \
             (floor {floor}x) — the tick path has regressed toward full-fleet sweeps",
            full / incr
        );
        return;
    }

    let (full, full_stats) = measure(&dc, &view, &workload, TickSweep::Full, 3);
    println!("bench sched_tick/dc9_full                   {full:>10.4}s median of 3");
    let (incr, incr_stats) = measure(&dc, &view, &workload, TickSweep::Incremental, 3);
    println!("bench sched_tick/dc9_incremental            {incr:>10.4}s median of 3");
    let speedup = full / incr;
    println!("bench sched_tick/speedup                    {speedup:>10.2}x");

    // The two sweeps must be indistinguishable in outcome.
    assert!(full_stats.tasks_started > 0, "bench placed nothing");
    assert_eq!(
        full_stats.tasks_started, incr_stats.tasks_started,
        "sweep modes placed different task counts"
    );
    assert_eq!(
        full_stats.total_kills, incr_stats.total_kills,
        "sweep modes killed different task counts"
    );
    assert_eq!(
        full_stats.mean_execution_secs().to_bits(),
        incr_stats.mean_execution_secs().to_bits(),
        "sweep modes produced different execution times"
    );

    let json = format!(
        "{{\n  \"bench\": \"sched_tick\",\n  \"cluster\": {{ \"profile\": \"{}\", \"servers\": {} }},\n  \"workload\": \"{} TPC-DS jobs over {}h horizon + {}h drain, disks on, YARN-PT, {} two-minute ticks\",\n  \"dc9_tick\": {{ \"full_secs\": {full:.6}, \"incremental_secs\": {incr:.6}, \"speedup\": {speedup:.2} }}\n}}\n",
        profile.name(),
        dc.n_servers(),
        workload.n_jobs(),
        HORIZON.as_hours_f64(),
        DRAIN.as_hours_f64(),
        ticks,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    std::fs::write(path, &json).expect("write BENCH_sched.json");
    println!("wrote {path}");
}
