//! Headroom computation and class-ranking weights (§4.1).
//!
//! "The headroom depends on the job type. For a short job, we define it
//! as 1 minus the current average CPU utilization of the servers in the
//! class. For a medium job, we use 1 minus Max(average CPU utilization,
//! current CPU utilization). For a long job, we use 1 minus Max(peak CPU
//! utilization, current CPU utilization)."
//!
//! Ranking: "For a long job, we give priority to constant classes first,
//! then periodic classes, and finally unpredictable classes. … for a
//! short job, we rank the classes unpredictable first, then periodic, and
//! finally constant. For a medium job, the ranking is periodic first,
//! then constant, and finally unpredictable."

use harvest_cluster::reserve::{RESERVE, SERVER_CAPACITY};
use harvest_jobs::length::JobLength;
use harvest_signal::classify::UtilizationPattern;

use crate::classes::TenantClass;

/// Ranking weights `W[job-type][pattern]`: higher weight = higher rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingWeights {
    weights: [[f64; 3]; 3],
}

impl Default for RankingWeights {
    fn default() -> Self {
        RankingWeights::paper()
    }
}

impl RankingWeights {
    /// The paper's rankings encoded as 3 > 2 > 1 weights.
    pub fn paper() -> Self {
        // Index order: [short, medium, long] × [periodic, constant, unpredictable].
        RankingWeights {
            weights: [
                [2.0, 1.0, 3.0], // short: unpredictable > periodic > constant
                [3.0, 2.0, 1.0], // medium: periodic > constant > unpredictable
                [2.0, 3.0, 1.0], // long: constant > periodic > unpredictable
            ],
        }
    }

    /// The weight for a (job length, pattern) pair.
    pub fn weight(&self, length: JobLength, pattern: UtilizationPattern) -> f64 {
        let row = match length {
            JobLength::Short => 0,
            JobLength::Medium => 1,
            JobLength::Long => 2,
        };
        let col = match pattern {
            UtilizationPattern::Periodic => 0,
            UtilizationPattern::Constant => 1,
            UtilizationPattern::Unpredictable => 2,
        };
        self.weights[row][col]
    }
}

/// The utilization fraction a class is expected to keep free for the
/// duration of a job of the given length, per the paper's three formulas.
///
/// `current_util` is the class's current average CPU utilization.
pub fn headroom_fraction(length: JobLength, class: &TenantClass, current_util: f64) -> f64 {
    let used = match length {
        JobLength::Short => current_util,
        JobLength::Medium => class.avg_util.max(current_util),
        JobLength::Long => class.peak_util.max(current_util),
    };
    (1.0 - used).clamp(0.0, 1.0)
}

/// Converts a headroom fraction into a number of single-core containers
/// the class can host: per server, the headroom cores minus the burst
/// reserve, summed across the class's servers.
pub fn headroom_containers(headroom_frac: f64, n_servers: usize) -> u64 {
    let per_server =
        (headroom_frac * SERVER_CAPACITY.cores as f64).floor() as i64 - RESERVE.cores as i64;
    per_server.max(0) as u64 * n_servers as u64
}

/// Headroom of a class for a job length, in containers.
pub fn class_headroom(length: JobLength, class: &TenantClass, current_util: f64) -> u64 {
    headroom_containers(
        headroom_fraction(length, class, current_util),
        class.n_servers(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_cluster::{ServerId, TenantId};

    fn class(avg: f64, peak: f64, servers: usize) -> TenantClass {
        TenantClass {
            id: 0,
            pattern: UtilizationPattern::Constant,
            avg_util: avg,
            peak_util: peak,
            tenants: vec![TenantId(0)],
            servers: (0..servers as u32).map(ServerId).collect(),
        }
    }

    #[test]
    fn paper_rankings_are_ordered() {
        let w = RankingWeights::paper();
        use JobLength::*;
        use UtilizationPattern::*;
        // Long: constant > periodic > unpredictable.
        assert!(w.weight(Long, Constant) > w.weight(Long, Periodic));
        assert!(w.weight(Long, Periodic) > w.weight(Long, Unpredictable));
        // Short: unpredictable > periodic > constant.
        assert!(w.weight(Short, Unpredictable) > w.weight(Short, Periodic));
        assert!(w.weight(Short, Periodic) > w.weight(Short, Constant));
        // Medium: periodic > constant > unpredictable.
        assert!(w.weight(Medium, Periodic) > w.weight(Medium, Constant));
        assert!(w.weight(Medium, Constant) > w.weight(Medium, Unpredictable));
    }

    #[test]
    fn headroom_uses_the_right_statistic() {
        let c = class(0.3, 0.7, 10);
        // Short: only current matters.
        assert!((headroom_fraction(JobLength::Short, &c, 0.2) - 0.8).abs() < 1e-12);
        // Medium: max(avg, current).
        assert!((headroom_fraction(JobLength::Medium, &c, 0.2) - 0.7).abs() < 1e-12);
        assert!((headroom_fraction(JobLength::Medium, &c, 0.5) - 0.5).abs() < 1e-12);
        // Long: max(peak, current).
        assert!((headroom_fraction(JobLength::Long, &c, 0.2) - 0.3).abs() < 1e-12);
        assert!((headroom_fraction(JobLength::Long, &c, 0.9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn container_conversion_subtracts_reserve() {
        // 50% headroom = 6 cores; minus the 4-core reserve = 2 per server.
        assert_eq!(headroom_containers(0.5, 10), 20);
        // Full headroom: 12 - 4 = 8 per server.
        assert_eq!(headroom_containers(1.0, 10), 80);
        // Headroom below the reserve yields nothing.
        assert_eq!(headroom_containers(0.3, 10), 0);
        assert_eq!(headroom_containers(0.0, 10), 0);
    }

    #[test]
    fn class_headroom_combines_both() {
        let c = class(0.5, 0.5, 4);
        // Long job, current 0.5: headroom 0.5 → 2 containers/server × 4.
        assert_eq!(class_headroom(JobLength::Long, &c, 0.5), 8);
    }
}
