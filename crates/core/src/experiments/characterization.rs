//! Figures 1–6: the behaviour-pattern characterization of §3.
//!
//! The paper characterizes ten production datacenters from AutoPilot
//! telemetry. Here the synthetic datacenter profiles are characterized
//! with the same pipeline the real system would use: generate each
//! tenant's month of utilization, classify it with the FFT classifier
//! (not the generator's label), and replay three years of reimages.

use harvest_signal::classify::{classify_with, ClassifierConfig, UtilizationPattern};
use harvest_signal::spectrum::{dominant_period_samples, periodicity_strength, SpectrumScratch};
use harvest_sim::metrics::fraction_at_or_below;
use harvest_sim::rng::{indexed_rng, stream_rng};
use harvest_trace::datacenter::DatacenterProfile;
use harvest_trace::gen::UtilGen;
use harvest_trace::reimage::{group_changes, per_server_monthly_rates};
use harvest_trace::{SAMPLES_PER_DAY, SAMPLES_PER_MONTH};

use crate::checkpoint::{sweep_plain, sweep_plain_with};
use crate::report::{num, pct, Table};
use crate::scale::Scale;

/// The five datacenters the paper's Figures 4–6 plot.
const REIMAGE_DCS: [usize; 5] = [0, 7, 9, 3, 1];

/// Figure 1: sample periodic and unpredictable traces in the time and
/// frequency domains.
pub fn fig1(scale: &Scale) -> String {
    let profile = DatacenterProfile::dc(9);
    let tenants = profile.sample_tenants(scale.seed);
    let periodic = tenants
        .iter()
        .find(|t| matches!(t.util, UtilGen::Periodic(_)))
        .expect("DC-9 has periodic tenants");
    let unpredictable = tenants
        .iter()
        .find(|t| matches!(t.util, UtilGen::Unpredictable(_)))
        .expect("DC-9 has unpredictable tenants");

    let mut table = Table::new(
        "Figure 1: sample traces, time and frequency domains",
        &[
            "tenant",
            "mean",
            "peak",
            "cv",
            "dominant period (days)",
            "diurnal strength",
        ],
    );
    for (label, spec) in [("periodic", periodic), ("unpredictable", unpredictable)] {
        let mut rng = stream_rng(scale.seed, label);
        let trace = spec.util.generate(&mut rng, SAMPLES_PER_MONTH);
        let period = dominant_period_samples(trace.values())
            .map(|p| p / SAMPLES_PER_DAY as f64)
            .unwrap_or(f64::NAN);
        let strength = periodicity_strength(trace.values(), SAMPLES_PER_DAY as f64);
        table.row(&[
            label.to_string(),
            num(trace.mean(), 3),
            num(trace.peak(), 3),
            num(trace.cv(), 3),
            num(period, 2),
            num(strength, 3),
        ]);
    }
    table.note("paper: the periodic trace shows a strong spike at the one-day frequency (31 peaks in a 31-day month); the unpredictable trace's spectrum decays with frequency");
    table.note("shape check: dominant period ~1 day and high strength for periodic; no diurnal concentration for unpredictable");
    table.render()
}

/// Runs the FFT classifier over every tenant of every datacenter.
///
/// The thousands of (generate trace, FFT, classify) units are
/// independent — each derives its RNG from its tenant index — so they
/// fan out over `scale.jobs` workers, and each worker reuses one
/// [`SpectrumScratch`] across every trace it classifies instead of
/// allocating a fresh spectrum per tenant.
/// Returns each DC's per-tenant classifications plus any harness notes
/// (quarantined tenants are skipped from the aggregates and named in
/// the note).
type DcClassifications = Vec<(String, Vec<(UtilizationPattern, usize)>)>;

fn classify_all(scale: &Scale) -> (DcClassifications, Vec<String>) {
    let classifier = ClassifierConfig::default();
    let mut notes = Vec::new();
    let per_dc = DatacenterProfile::all()
        .into_iter()
        .map(|profile| {
            let profile = profile.scaled(scale.dc_scale.max(0.05));
            let tenants = profile.sample_tenants(scale.seed);
            let indices: Vec<usize> = (0..tenants.len()).collect();
            let name = profile.name();
            let swept = sweep_plain_with(
                scale,
                "char-trace",
                &indices,
                |&i| format!("{name}/t{i}"),
                SpectrumScratch::new,
                |scratch, &i, _cancel| {
                    let t = &tenants[i];
                    let mut rng = indexed_rng(scale.seed, "char-trace", i as u64);
                    let trace = t.util.generate(&mut rng, SAMPLES_PER_MONTH);
                    (
                        classify_with(trace.values(), &classifier, scratch),
                        t.n_servers,
                    )
                },
            );
            if let Some(note) = swept.note {
                notes.push(note);
            }
            let per_tenant: Vec<(UtilizationPattern, usize)> =
                swept.results.into_iter().flatten().collect();
            (name, per_tenant)
        })
        .collect();
    (per_dc, notes)
}

/// Figure 2: percentage of primary tenants per class.
pub fn fig2(scale: &Scale) -> String {
    let mut table = Table::new(
        "Figure 2: percentage of primary tenants per class",
        &["datacenter", "periodic", "constant", "unpredictable"],
    );
    let (per_dc, notes) = classify_all(scale);
    for (name, tenants) in per_dc {
        let n = tenants.len() as f64;
        let count = |p: UtilizationPattern| {
            tenants.iter().filter(|(c, _)| *c == p).count() as f64 / n * 100.0
        };
        table.row(&[
            name,
            pct(count(UtilizationPattern::Periodic)),
            pct(count(UtilizationPattern::Constant)),
            pct(count(UtilizationPattern::Unpredictable)),
        ]);
    }
    for note in notes {
        table.note(note);
    }
    table.note("paper: periodic (user-facing) tenants are a small minority; the vast majority of tenants exhibit roughly constant utilization");
    table.render()
}

/// Figure 3: percentage of servers per class.
pub fn fig3(scale: &Scale) -> String {
    let mut table = Table::new(
        "Figure 3: percentage of servers per class",
        &["datacenter", "periodic", "constant", "unpredictable"],
    );
    let mut periodic_sum = 0.0;
    let mut rows = 0usize;
    let (per_dc, notes) = classify_all(scale);
    for (name, tenants) in per_dc {
        let total: usize = tenants.iter().map(|(_, s)| s).sum();
        let count = |p: UtilizationPattern| {
            tenants
                .iter()
                .filter(|(c, _)| *c == p)
                .map(|(_, s)| *s)
                .sum::<usize>() as f64
                / total as f64
                * 100.0
        };
        let per = count(UtilizationPattern::Periodic);
        periodic_sum += per;
        rows += 1;
        table.row(&[
            name,
            pct(per),
            pct(count(UtilizationPattern::Constant)),
            pct(count(UtilizationPattern::Unpredictable)),
        ]);
    }
    for note in notes {
        table.note(note);
    }
    table.note(format!(
        "paper: periodic tenants hold ~40% of servers on average; measured average {}",
        pct(periodic_sum / rows as f64)
    ));
    table.note("paper: ~75% of servers run periodic or constant tenants, whose history predicts the future");
    table.render()
}

/// Per-DC reimage data over three years (36 months).
struct ReimageData {
    per_server_rates: Vec<f64>,
    per_tenant_rates: Vec<f64>,
    /// `monthly_rates[month][tenant]`.
    monthly_rates: Vec<Vec<f64>>,
}

fn reimage_data(dc_id: usize, scale: &Scale) -> (ReimageData, Option<String>) {
    let months = 36;
    let profile = DatacenterProfile::dc(dc_id).scaled(scale.dc_scale.max(0.05));
    let tenants = profile.sample_tenants(scale.seed);
    // Three years of reimages per tenant, fanned out over the sweep
    // workers (the RNG stream is already indexed per tenant), then
    // folded back in tenant order so the aggregates are unchanged. A
    // quarantined tenant is skipped from the aggregates and named in
    // the returned harness note.
    let indices: Vec<usize> = (0..tenants.len()).collect();
    let swept = sweep_plain(
        scale,
        "char-reimage",
        &indices,
        |&i| format!("dc{dc_id}/t{i}"),
        |&i, _cancel| {
            let t = &tenants[i];
            let mut rng = indexed_rng(scale.seed, "char-reimage", (dc_id * 10_000 + i) as u64);
            let (events, rates) = t.reimage.generate(&mut rng, t.n_servers, months);
            let server_rates = per_server_monthly_rates(&events, t.n_servers, months);
            let tenant_rate =
                harvest_trace::reimage::tenant_monthly_rate(&events, t.n_servers, months);
            (server_rates, tenant_rate, rates)
        },
    );

    let mut per_server_rates = Vec::new();
    let mut per_tenant_rates = Vec::new();
    let mut monthly: Vec<Vec<f64>> = vec![Vec::new(); months];
    for (server_rates, tenant_rate, rates) in swept.results.into_iter().flatten() {
        per_server_rates.extend(server_rates);
        per_tenant_rates.push(tenant_rate);
        // Group tenants by their per-month reimage *frequency* (the
        // drifted model rate). Raw monthly counts would add Poisson
        // sampling noise that scales inversely with tenant size; on
        // scaled-down datacenters that noise would swamp the rank
        // consistency the paper measures on full-size tenants.
        for (m, rate) in rates.into_iter().enumerate() {
            monthly[m].push(rate);
        }
    }
    (
        ReimageData {
            per_server_rates,
            per_tenant_rates,
            monthly_rates: monthly,
        },
        swept.note,
    )
}

fn cdf_row(name: String, samples: &[f64], thresholds: &[f64]) -> Vec<String> {
    let mut row = vec![name];
    for &t in thresholds {
        row.push(pct(fraction_at_or_below(samples, t) * 100.0));
    }
    row
}

/// Figure 4: CDF of per-server reimages/month over three years.
pub fn fig4(scale: &Scale) -> String {
    let thresholds = [0.25, 0.5, 1.0, 1.5, 2.0];
    let mut table = Table::new(
        "Figure 4: CDF of per-server reimages per month (3 years)",
        &["datacenter", "<=0.25", "<=0.5", "<=1.0", "<=1.5", "<=2.0"],
    );
    for dc in REIMAGE_DCS {
        let (data, note) = reimage_data(dc, scale);
        table.row(&cdf_row(
            format!("DC-{dc}"),
            &data.per_server_rates,
            &thresholds,
        ));
        if let Some(note) = note {
            table.note(note);
        }
    }
    table.note("paper: at least 90% of servers are reimaged once or fewer times per month; a ~10% tail is reimaged frequently; DC-0 and DC-7 show substantially lower rates");
    table.render()
}

/// Figure 5: CDF of per-tenant reimages/server/month over three years.
pub fn fig5(scale: &Scale) -> String {
    let thresholds = [0.25, 0.5, 1.0, 1.5, 2.0];
    let mut table = Table::new(
        "Figure 5: CDF of per-tenant reimages per server per month (3 years)",
        &["datacenter", "<=0.25", "<=0.5", "<=1.0", "<=1.5", "<=2.0"],
    );
    for dc in REIMAGE_DCS {
        let (data, note) = reimage_data(dc, scale);
        table.row(&cdf_row(
            format!("DC-{dc}"),
            &data.per_tenant_rates,
            &thresholds,
        ));
        if let Some(note) = note {
            table.note(note);
        }
    }
    table.note("paper: at least 80% of tenants are reimaged once or fewer times per server per month, with good diversity across tenants (no near-vertical CDFs)");
    table.render()
}

/// Figure 6: CDF of tenant frequency-group changes month-over-month.
pub fn fig6(scale: &Scale) -> String {
    let thresholds = [2.0, 4.0, 8.0, 12.0, 20.0];
    let mut table = Table::new(
        "Figure 6: CDF of reimage frequency-group changes in 3 years (35 transitions)",
        &["datacenter", "<=2", "<=4", "<=8", "<=12", "<=20"],
    );
    let mut at8 = Vec::new();
    for dc in REIMAGE_DCS {
        let (data, note) = reimage_data(dc, scale);
        let changes: Vec<f64> = group_changes(&data.monthly_rates)
            .into_iter()
            .map(|c| c as f64)
            .collect();
        at8.push(fraction_at_or_below(&changes, 8.0));
        table.row(&cdf_row(format!("DC-{dc}"), &changes, &thresholds));
        if let Some(note) = note {
            table.note(note);
        }
    }
    let min_at8 = at8.iter().cloned().fold(f64::MAX, f64::min);
    table.note(format!(
        "paper: at least 80% of tenants changed groups 8 or fewer times out of 35; measured minimum across DCs: {}",
        pct(min_at8 * 100.0)
    ));
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        let mut s = Scale::quick();
        s.dc_scale = 0.02;
        s
    }

    #[test]
    fn fig1_reports_both_patterns() {
        let out = fig1(&tiny());
        assert!(out.contains("periodic"));
        assert!(out.contains("unpredictable"));
    }

    #[test]
    fn fig2_constant_majority() {
        let out = fig2(&tiny());
        assert_eq!(out.matches("DC-").count(), 10);
    }

    #[test]
    fn fig6_rank_consistency_holds() {
        let scale = tiny();
        for dc in REIMAGE_DCS {
            let (data, _) = reimage_data(dc, &scale);
            let changes: Vec<f64> = group_changes(&data.monthly_rates)
                .into_iter()
                .map(|c| c as f64)
                .collect();
            let frac = fraction_at_or_below(&changes, 8.0);
            assert!(
                frac >= 0.7,
                "DC-{dc}: only {frac:.2} of tenants change groups <=8 times"
            );
        }
    }

    #[test]
    fn fig4_majority_below_one_reimage() {
        let scale = tiny();
        for dc in REIMAGE_DCS {
            let (data, _) = reimage_data(dc, &scale);
            let frac = fraction_at_or_below(&data.per_server_rates, 1.0);
            assert!(frac >= 0.75, "DC-{dc}: {frac:.2} of servers <=1/month");
        }
    }
}
