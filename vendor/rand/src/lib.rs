//! Offline stand-in for the base [`rand`] crate.
//!
//! The harvest workspace builds in environments without a crates.io
//! mirror, so the subset of the `rand` 0.9 API the workspace actually
//! uses is reimplemented here: the [`Rng`] core trait, the [`RngExt`]
//! convenience methods (`random`, `random_range`, `random_bool`), the
//! [`SeedableRng`] constructor trait, and a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64).
//!
//! Determinism is the only hard requirement: every simulation in the
//! workspace replays bit-identically for a fixed seed, so `StdRng` must
//! produce the same stream on every platform. xoshiro256++ is exact
//! integer arithmetic and passes BigCrush, which is more than enough for
//! simulation workloads.

/// A source of random bits.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng`'s raw bits
/// (the stand-in for `rand`'s `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a uniform integer can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` onto `[0, span)` with the widening-multiply method
/// (Lemire's unbiased-enough fast reduction; the tiny modulo bias of the
/// plain multiply variant is irrelevant for simulation sampling and keeps
/// the stream deterministic and branch-free).
#[inline]
fn reduce(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T` ([`Standard`] distribution:
    /// `f64`/`f32` in `[0, 1)`, integers over their full range).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p.clamp(0.0, 1.0)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One round of the SplitMix64 output function, used for seed expansion.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, as the xoshiro authors
            // recommend; guarantees a non-zero state.
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = r.random_range(0u64..=3);
            assert!(y <= 3);
            let z = r.random_range(-4i64..5);
            assert!((-4..5).contains(&z));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn take_dyn(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random()
        }
        let mut r = StdRng::seed_from_u64(5);
        let x = take_dyn(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
