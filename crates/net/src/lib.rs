//! A deterministic flow-level datacenter network fabric.
//!
//! The paper's worst behaviors are network behaviors: re-replication
//! storms after correlated reimages (§7, lesson 2), remote block reads
//! when the local replica sits on a busy primary (Figure 16), and
//! harvested shuffle traffic competing with everything else. This crate
//! gives the workspace the fabric those stories play out on:
//!
//! * [`config`] — [`NetworkConfig`]: NIC speed, rack-uplink
//!   oversubscription, per-hop latency;
//! * [`topology`] — [`Topology`]: the server-NIC / ToR / oversubscribed
//!   aggregation hierarchy, derived from a
//!   [`harvest_cluster::Datacenter`]'s own rack layout, with path lookup
//!   and idle-fabric transfer estimates;
//! * [`fabric`] — [`Fabric`]: event-driven flows with max-min fair
//!   bandwidth sharing; flow starts, completions, and re-share
//!   reschedules all run through a [`harvest_sim::engine::EventQueue`],
//!   so a fabric replay is bit-identical for identical inputs.
//!
//! Consumers: `harvest-dfs` turns throttled re-replication and remote
//! reads into flows; `harvest-sched` turns inter-stage shuffle bytes
//! into flows that gate dependent stages; `harvest-core` threads a
//! [`NetworkConfig`] through the experiment harness so every scenario
//! runs with the fabric on or off.
//!
//! # Examples
//!
//! ```
//! use harvest_cluster::Datacenter;
//! use harvest_net::{Fabric, NetworkConfig};
//! use harvest_sim::SimTime;
//! use harvest_trace::datacenter::DatacenterProfile;
//!
//! let dc = Datacenter::generate(&DatacenterProfile::dc(9).scaled(0.02), 42);
//! let mut fabric = Fabric::from_datacenter(&dc, &NetworkConfig::datacenter());
//! let src = dc.servers[0].id;
//! let dst = dc.servers.last().unwrap().id;
//! fabric.schedule_flow(SimTime::ZERO, src, dst, 256 * 1024 * 1024, 0);
//! let done = fabric.drain();
//! assert_eq!(done.len(), 1);
//! assert!(done[0].at > SimTime::ZERO);
//! ```

pub mod config;
pub mod fabric;
pub mod topology;

pub use config::NetworkConfig;
pub use fabric::{Fabric, FabricStats, FlowCompletion, FlowId, ReshareScope};
pub use harvest_sim::fairshare::SharingMode;
pub use topology::{LinkId, Path, Topology};
