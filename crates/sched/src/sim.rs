//! The co-location scheduling simulator.
//!
//! Runs a [`Workload`] of DAG jobs against a [`Datacenter`] under one of
//! the three scheduler policies, replaying the primary tenants'
//! utilization and enforcing the burst reserve. This is the engine behind
//! Figures 10, 11, 13, and 14.
//!
//! Mechanics (per §5.3):
//!
//! * the node manager rounds the primary's usage up to whole cores and
//!   keeps the 4-core/10 GB reserve free; when a primary burst violates
//!   the reserve, it kills containers **youngest first** until the
//!   reserve is restored;
//! * Tez-H asks the clustering service for a class (or classes) per job
//!   via Algorithm 1 and the RM then only places that job's tasks on
//!   servers of those classes;
//! * the RM balances load across eligible servers (the paper places with
//!   probability proportional to available resources; this simulator
//!   approximates that with random probing that picks the freest of a
//!   dozen sampled servers, which has the same balancing effect without
//!   a full scan per container).
//!
//! Utilization changes on the trace's two-minute grid, so reserve
//! violations are detected and repaired on the same grid (the paper's
//! reaction time is "a few seconds at most"; both are far shorter than
//! task durations).
//!
//! With a [`NetworkConfig`], inter-stage shuffles become real flows: a
//! stage whose dependencies just finished cannot start tasks until its
//! shuffle bytes have crossed the fabric, where they share bandwidth
//! max-min fairly with every other in-flight shuffle. Under contention
//! (and against repair storms sharing the same uplinks) stage runtimes
//! stretch exactly the way Tez jobs do on a busy cluster.
//!
//! With a [`DiskConfig`], the same shuffle bytes also touch platters:
//! each aggregate flow is bracketed by a fetch *read* on its source's
//! disk and a spill *write* on its destination's, both secondary
//! streams competing with the primary tenants' modeled I/O — so a
//! reducer scheduled next to a disk-hot primary stalls on its spill
//! even when the wire is free, which is §6's interference made visible
//! to the scheduler experiments.
//!
//! # Cost model
//!
//! The two-minute tick is the simulator's hottest loop — a DC-9 run
//! dispatches it hundreds of times over 14 386 servers — so under the
//! default [`TickSweep::Incremental`] it is change-driven, never a
//! fleet sweep:
//!
//! * fleet utilization accounting is one lookup into the
//!   [`UtilizationView`]'s precomputed fleet series;
//! * reserve enforcement walks the *occupied-server index* (servers
//!   hosting at least one alive container, maintained on place and
//!   release by [`crate::roster::ContainerRoster`]) instead of scanning
//!   the fleet for nonzero allocations;
//! * the primaries' disk-demand replay visits only disks with in-flight
//!   secondary streams ([`DiskPool::active_servers`]) whose playback
//!   sample actually moved across the tick boundary
//!   ([`UtilizationView::server_sample_changed`]); a disk idle when the
//!   tick fires is brought up to date lazily — against the same tick's
//!   sample — the moment a stream is scheduled on it.
//!
//! A tick therefore costs O(changed + occupied), not O(fleet).
//! [`TickSweep::Full`] keeps the pre-index full-fleet sweeps
//! (whole-fleet demand replay, whole-fleet reserve scan, per-call
//! fleet-utilization recompute) as the reference: the two modes are
//! pinned **bitwise identical** —
//! same placements, kills, completion schedules, and stats — by the
//! oracle property tests in `tests/properties.rs`, and
//! `benches/sched_tick.rs` measures the gap on an unscaled DC-9.
//! Within an event, per-container work is O(1) amortized: releases
//! tombstone instead of splicing the per-server lists, kills invalidate
//! exactly the killed task's shuffle-source slot, and a scheduling pass
//! iterates the runnable list in place instead of cloning it.

use harvest_cluster::reserve::{secondary_capacity, SERVER_CAPACITY};
use harvest_cluster::{Datacenter, Resources, ServerId, UtilizationView};
use harvest_disk::{DiskConfig, DiskPool, IoDir};
use harvest_jobs::dag::StageId;
use harvest_jobs::estimate::max_concurrent_tasks;
use harvest_jobs::exec::JobExecution;
use harvest_jobs::length::{JobHistory, LengthThresholds};
use harvest_jobs::shuffle::{stage_shuffle_bytes, DEFAULT_BYTES_PER_TASK};
use harvest_jobs::workload::Workload;
use harvest_net::{Fabric, NetworkConfig};
use harvest_sim::engine::EventQueue;
use harvest_sim::fault::{FaultKind, FaultPlan};
use harvest_sim::obs::{GaugeId, HistogramId, Recorder, StateTrackId, TrackId};
use harvest_sim::rng::stream_rng;
use harvest_sim::supervise::CancelToken;
use harvest_sim::{SharingMode, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::classes::ClusteringService;
use crate::headroom::RankingWeights;
use crate::policy::SchedPolicy;
use crate::roster::{ContainerRoster, StageSources};
use crate::select::{select_classes, ClassSelection};
use crate::stats::{JobResult, LoadSample, SimStats};

/// How the per-tick bookkeeping visits the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickSweep {
    /// Change-driven (the default): occupied-server index for reserve
    /// enforcement, active-disk index plus sample-change filtering for
    /// the primary disk replay, precomputed fleet series for the
    /// utilization accounting. O(changed + occupied) per tick.
    #[default]
    Incremental,
    /// Full-fleet sweeps on every tick — the pre-index reference cost
    /// shape, bitwise identical to `Incremental` (pinned by the oracle
    /// property tests). Kept for validation and benchmarking.
    Full,
}

/// Default container request: 1 core, 2 GB.
pub const CONTAINER: Resources = Resources {
    cores: 1,
    memory_mb: 2_048,
};

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SchedSimConfig {
    /// Scheduler variant.
    pub policy: SchedPolicy,
    /// How long jobs keep arriving (the workload horizon should match).
    pub horizon: SimDuration,
    /// Extra time after the horizon for in-flight jobs to finish.
    pub drain: SimDuration,
    /// Master seed for placement/selection randomness.
    pub seed: u64,
    /// Job-length thresholds for Algorithm 1.
    pub thresholds: LengthThresholds,
    /// Pre-seed the job-length history with each query's critical path
    /// (as if every query ran once before the experiment; without this,
    /// every first-seen job types as medium).
    pub preseed_history: bool,
    /// Record per-server load samples every tick (only sensible for
    /// testbed-sized clusters).
    pub record_server_load: bool,
    /// When set, inter-stage shuffles travel the fabric and gate
    /// dependent stages; `None` keeps data movement free and instant
    /// (the seed model).
    pub network: Option<NetworkConfig>,
    /// When set, each shuffle's bytes are also fetched off the source
    /// servers' disks and spilled onto the destinations', as secondary
    /// streams contending with the primary tenants' modeled disk I/O;
    /// stages stay gated until the slowest of wire, fetch, and spill
    /// finishes. Composes with `network`; meaningful on its own too
    /// (disk-bound shuffles over a free wire).
    pub disk: Option<DiskConfig>,
    /// Fair-sharing engine for the fabric and disk pool
    /// ([`SharingMode::Auto`] by default: analytic O(log n) on
    /// single-bottleneck components and channels, progressive filling
    /// elsewhere; results identical either way).
    pub sharing: SharingMode,
    /// Intermediate bytes each upstream task ships per dependent edge
    /// (only meaningful with `network` or `disk` set).
    pub shuffle_bytes_per_task: u64,
    /// How the tick visits the fleet: change-driven (default) or the
    /// full-sweep reference. The two are bitwise identical in outcome;
    /// `Full` exists for validation and benchmarking.
    pub sweep: TickSweep,
    /// Deterministic fault injection. A crashed (or rack-power-lost)
    /// server loses every container it hosts — the interrupted stages
    /// re-dispatch after exponential backoff, up to the plan's retry
    /// budget, after which the job is abandoned — and drops out of
    /// placement until its restart. With a data-movement model on,
    /// in-flight shuffle parts touching the fault abort and the gate
    /// restarts from scratch; disk faults (`DiskFail`/`DiskDegrade`)
    /// only matter when `disk` is set, uplink faults only when
    /// `network` is. [`FaultPlan::none`] (the default) keeps every
    /// fault branch unarmed: the trajectory is bitwise identical to the
    /// pre-fault simulator (pinned by tests).
    pub faults: FaultPlan,
    /// Cooperative cancellation, polled at tick granularity (every two
    /// simulated minutes): when the supervising harness cancels an
    /// overdue sweep task, the event loop stops at the next tick and
    /// the partial result is discarded by the caller. The default
    /// token is never cancelled and costs one relaxed load per tick.
    pub cancel: CancelToken,
}

impl SchedSimConfig {
    /// A configuration mirroring the paper's five-hour testbed runs.
    pub fn testbed(policy: SchedPolicy, seed: u64) -> Self {
        SchedSimConfig {
            policy,
            horizon: SimDuration::from_hours(5),
            drain: SimDuration::from_hours(2),
            seed,
            thresholds: LengthThresholds::paper_testbed(),
            preseed_history: true,
            record_server_load: false,
            network: None,
            disk: None,
            sharing: SharingMode::default(),
            shuffle_bytes_per_task: DEFAULT_BYTES_PER_TASK,
            sweep: TickSweep::Incremental,
            faults: FaultPlan::none(),
            cancel: CancelToken::new(),
        }
    }
}

/// The tick on which utilization is re-read and reserves enforced.
const TICK: SimDuration = SimDuration::from_mins(2);

/// How many random servers a placement probes before giving up.
const PLACEMENT_PROBES: usize = 12;

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    Finish(usize),
    Tick,
    /// Wake-up so in-flight shuffle completions are observed promptly
    /// rather than at the next two-minute tick.
    NetWake,
    /// An injected fault fires (index into the expanded action list).
    /// Only queued when the fault plan is non-empty, so the fault-free
    /// event stream is untouched.
    Fault(usize),
    /// A fault-interrupted stage's backoff delay elapsed (payload is
    /// the stage entity `job << 32 | stage`): the stage becomes
    /// placeable again.
    Retry(u64),
}

/// A server-granular fault consequence, expanded from the plan's rack-
/// and server-level events (rack power events fan out to every server
/// in the rack). Unlike the durability engine there is no heartbeat
/// grace here: the RM sees a dead node manager at crash time.
#[derive(Debug, Clone, Copy)]
enum SchedFaultAction {
    /// The node manager dies: its containers are lost, in-flight
    /// shuffle parts touching it abort, and placement skips it.
    Crash(ServerId),
    /// The server rejoins the cluster (empty — tasks do not survive).
    Restore(ServerId),
    /// Both rack↔agg links die (shuffles crossing them abort).
    UplinkDown(u32),
    /// Both rack↔agg links recover.
    UplinkUp(u32),
    /// The disk dies and is replaced: streams on it abort once.
    DiskFail(ServerId),
    /// Brown-out: the disk's secondary bandwidth scales by a factor.
    DiskDegrade(ServerId, f64),
}

/// Expands a [`FaultPlan`] into the server-granular actions the event
/// loop consumes. Events past `horizon` are dropped, so an armed plan
/// whose events never fire is exactly a no-op; out-of-range targets (a
/// plan drawn for a different cluster shape) are skipped.
fn expand_sched_fault_plan(
    dc: &Datacenter,
    plan: &FaultPlan,
    horizon: SimTime,
) -> Vec<(SimTime, SchedFaultAction)> {
    let n = dc.n_servers() as u32;
    let n_racks = dc.n_racks() as u32;
    let mut out: Vec<(SimTime, SchedFaultAction)> = Vec::new();
    for ev in plan.events.iter().filter(|e| e.at <= horizon) {
        let mut add = |action: SchedFaultAction| out.push((ev.at, action));
        match ev.kind {
            FaultKind::ServerCrash { server } if server < n => {
                add(SchedFaultAction::Crash(ServerId(server)));
            }
            FaultKind::ServerRestart { server } if server < n => {
                add(SchedFaultAction::Restore(ServerId(server)));
            }
            FaultKind::RackPowerLoss { rack } if rack < n_racks => {
                for s in dc.servers_in_rack(rack) {
                    add(SchedFaultAction::Crash(ServerId(s)));
                }
            }
            FaultKind::RackPowerRestore { rack } if rack < n_racks => {
                for s in dc.servers_in_rack(rack) {
                    add(SchedFaultAction::Restore(ServerId(s)));
                }
            }
            FaultKind::RackUplinkDown { rack } if rack < n_racks => {
                add(SchedFaultAction::UplinkDown(rack));
            }
            FaultKind::RackUplinkUp { rack } if rack < n_racks => {
                add(SchedFaultAction::UplinkUp(rack));
            }
            FaultKind::DiskFail { server } if server < n => {
                add(SchedFaultAction::DiskFail(ServerId(server)));
            }
            FaultKind::DiskDegrade { server, factor }
                if server < n && factor.is_finite() && factor >= 0.0 =>
            {
                add(SchedFaultAction::DiskDegrade(ServerId(server), factor));
            }
            _ => {}
        }
    }
    // The plan is already time-sorted and the expansion preserves
    // order, so same-time actions keep their plan order via the event
    // queue's FIFO tie-break.
    out
}

/// How many aggregate flows one stage's shuffle is split into (one per
/// distinct upstream server, capped — real shuffles open thousands of
/// fetches, but their aggregate bandwidth behavior is that of a few
/// parallel streams per source).
const MAX_SHUFFLE_FLOWS: usize = 16;

/// Whether a stage may start tasks, shuffle-wise.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ShuffleGate {
    /// Shuffle not yet started (stage not ready, or never attempted).
    Unstarted,
    /// Shuffle flows in flight; `0` remaining means about to open.
    Waiting(u32),
    /// Shuffle done (or not needed): tasks may be placed.
    Open,
}

#[derive(Debug)]
struct Container {
    job: usize,
    stage: StageId,
    server: ServerId,
    start: SimTime,
    alive: bool,
    /// This task's slot in its stage's shuffle sources (`u32::MAX`
    /// without a data-movement model).
    source_slot: u32,
}

#[derive(Debug)]
struct ActiveJob {
    exec: JobExecution,
    query: usize,
    /// Servers this job's tasks may use (None = whole cluster; per §5.3
    /// an unlabeled request falls back to the RM's default policy).
    allowed: Option<Vec<ServerId>>,
    done: bool,
}

/// The scheduling simulator. See the module docs.
pub struct SchedSim<'a> {
    dc: &'a Datacenter,
    view: &'a UtilizationView,
    workload: &'a Workload,
    cfg: SchedSimConfig,
}

impl<'a> SchedSim<'a> {
    /// Creates a simulator over the given cluster, utilization view, and
    /// workload.
    pub fn new(
        dc: &'a Datacenter,
        view: &'a UtilizationView,
        workload: &'a Workload,
        cfg: SchedSimConfig,
    ) -> Self {
        SchedSim {
            dc,
            view,
            workload,
            cfg,
        }
    }

    /// Runs the simulation to completion and returns the statistics.
    pub fn run(&self) -> SimStats {
        let mut rec = Recorder::off();
        self.run_recorded(&mut rec)
    }

    /// [`SchedSim::run`] with observability: tick spans (annotated with
    /// changed-disk and occupied-server counts) land on the `sched`
    /// track, the event-queue depth is gauged each tick, per-stage
    /// wait states land on the `sched/stage` state track (see
    /// [`SchedObs::stages`]), and the fabric and disk pool record into
    /// child recorders that are absorbed back into `rec` at the end,
    /// along with `sched/*` counters mirroring the run's totals. Recording never changes the trajectory: the
    /// returned [`SimStats`] is bitwise identical to [`SchedSim::run`]'s
    /// (pinned by tests), and nothing is printed.
    pub fn run_recorded(&self, rec: &mut Recorder) -> SimStats {
        let runner = Runner::new(self, std::mem::take(rec));
        let (stats, r) = runner.run();
        *rec = r;
        stats
    }
}

/// Metric ids registered when the runner's recorder is on.
struct SchedObs {
    track: TrackId,
    queue_len: GaugeId,
    tick_changed: HistogramId,
    tick_occupied: HistogramId,
    /// Wait-state track `sched/stage` (entity = `job << 32 | stage`):
    /// `blocked_on_net`/`blocked_on_disk_read` while the shuffle gate
    /// is closed, `queued` from gate-open to first placement, `running`
    /// once a task is placed, `reserve_evicted` from a kill until the
    /// replacement task lands, exit when the stage's last task
    /// finishes. Without a data-movement model stages are never gated,
    /// so they appear as pure `running` intervals.
    stages: StateTrackId,
    /// Stages currently marked `running`, so only the first placed task
    /// (or the first after an eviction) records a transition.
    stage_running: std::collections::HashSet<u64>,
}

struct Runner<'a> {
    sim: &'a SchedSim<'a>,
    rng: StdRng,
    queue: EventQueue<Ev>,
    svc: Option<ClusteringService>,
    weights: RankingWeights,
    history: JobHistory,
    jobs: Vec<ActiveJob>,
    containers: Vec<Container>,
    alloc: Vec<Resources>,
    /// Per-server container lists (oldest → youngest) plus the
    /// occupied-server index the incremental tick sweep walks.
    roster: ContainerRoster,
    /// Jobs that might have ready, unplaced tasks.
    runnable: Vec<usize>,
    /// Per-job membership flag for `runnable` (O(1) duplicate checks).
    in_runnable: Vec<bool>,
    /// Reusable per-pass "could not place" flags for `schedule_pass`.
    blocked_scratch: Vec<bool>,
    results: Vec<Option<JobResult>>,
    total_kills: u64,
    tasks_started: u64,
    primary_core_ms: f64,
    secondary_core_ms: f64,
    observed_ms: f64,
    server_load: Vec<Vec<LoadSample>>,
    kills_per_server: Vec<u64>,
    end_of_time: SimTime,
    fabric: Option<Fabric>,
    disks: Option<DiskPool>,
    /// Per job, per stage: whether the stage's shuffle has landed.
    shuffle_gate: Vec<Vec<ShuffleGate>>,
    /// Per job, per stage: servers its tasks ran on (shuffle sources;
    /// populated only with a data-movement model on).
    stage_servers: Vec<Vec<StageSources>>,
    /// The NetWake instant currently queued, to avoid duplicates.
    pending_wake: Option<SimTime>,
    /// The most recent tick dispatched — the sample the lazy primary
    /// disk refresh replays for disks idle when the tick fired.
    last_tick: Option<SimTime>,
    /// Observability sink; `obs` holds registered ids iff recording is
    /// on, so the tick pays one `Option` check when off.
    rec: Recorder,
    obs: Option<SchedObs>,
    /// Expanded fault actions, indexed by `Ev::Fault`.
    fault_actions: Vec<(SimTime, SchedFaultAction)>,
    /// Whether the fault plan is non-empty. Every branch that could
    /// perturb the fault-free trajectory checks this first.
    fault_armed: bool,
    /// Servers currently crashed / powered off.
    down: Vec<bool>,
    /// Fault-retry budget spent per stage entity (`job << 32 | stage`).
    fault_attempts: std::collections::HashMap<u64, u32>,
    /// Stage entities currently in the `retrying` wait state, so open
    /// states can be closed at end-of-run (conservation).
    fault_retrying: std::collections::HashSet<u64>,
    fault_kills: u64,
    fault_retries: u64,
    jobs_abandoned: u64,
}

impl<'a> Runner<'a> {
    fn new(sim: &'a SchedSim<'a>, mut rec: Recorder) -> Self {
        let obs = rec.is_on().then(|| SchedObs {
            track: rec.track("sched"),
            queue_len: rec.gauge("sched/queue_len"),
            tick_changed: rec.histogram("sched/tick_changed_disks"),
            tick_occupied: rec.histogram("sched/tick_occupied_servers"),
            stages: rec.state_track("sched/stage"),
            stage_running: std::collections::HashSet::new(),
        });
        let n_servers = sim.dc.n_servers();
        let svc = if sim.cfg.policy.uses_history() {
            Some(ClusteringService::build_adaptive(
                sim.dc,
                sim.view,
                sim.cfg.seed,
            ))
        } else {
            None
        };
        let mut history = JobHistory::new();
        if sim.cfg.preseed_history {
            for q in &sim.workload.queries {
                history.record(&q.name, q.critical_path());
            }
        }
        let mut fabric = sim.cfg.network.as_ref().map(|net| {
            let mut f = Fabric::from_datacenter(sim.dc, net);
            f.set_sharing_mode(sim.cfg.sharing);
            f
        });
        let mut disks = sim.cfg.disk.as_ref().map(|d| {
            let mut p = DiskPool::from_datacenter(sim.dc, d);
            p.set_sharing_mode(sim.cfg.sharing);
            p
        });
        if rec.is_on() {
            if let Some(f) = fabric.as_mut() {
                f.set_recorder(rec.child());
            }
            if let Some(d) = disks.as_mut() {
                d.set_recorder(rec.child());
            }
        }
        let end_of_time = SimTime::ZERO + sim.cfg.horizon + sim.cfg.drain;
        let fault_armed = !sim.cfg.faults.is_none();
        let fault_actions = if fault_armed {
            expand_sched_fault_plan(sim.dc, &sim.cfg.faults, end_of_time)
        } else {
            Vec::new()
        };
        Runner {
            sim,
            rng: stream_rng(sim.cfg.seed, "sched-sim"),
            queue: EventQueue::with_capacity(1024),
            svc,
            weights: RankingWeights::paper(),
            history,
            jobs: Vec::new(),
            containers: Vec::new(),
            alloc: vec![Resources::ZERO; n_servers],
            roster: ContainerRoster::new(n_servers),
            runnable: Vec::new(),
            in_runnable: Vec::new(),
            blocked_scratch: Vec::new(),
            results: vec![None; sim.workload.n_jobs()],
            total_kills: 0,
            tasks_started: 0,
            primary_core_ms: 0.0,
            secondary_core_ms: 0.0,
            observed_ms: 0.0,
            server_load: vec![
                Vec::new();
                if sim.cfg.record_server_load {
                    n_servers
                } else {
                    0
                }
            ],
            kills_per_server: vec![0u64; n_servers],
            end_of_time,
            fabric,
            disks,
            shuffle_gate: Vec::new(),
            stage_servers: Vec::new(),
            pending_wake: None,
            last_tick: None,
            rec,
            obs,
            fault_actions,
            fault_armed,
            down: vec![false; n_servers],
            fault_attempts: std::collections::HashMap::new(),
            fault_retrying: std::collections::HashSet::new(),
            fault_kills: 0,
            fault_retries: 0,
            jobs_abandoned: 0,
        }
    }

    /// Whether any data-movement model (fabric or disks) is on.
    fn models_io(&self) -> bool {
        self.fabric.is_some() || self.disks.is_some()
    }

    fn run(mut self) -> (SimStats, Recorder) {
        for (i, arrival) in self.sim.workload.arrivals.iter().enumerate() {
            self.queue.push(arrival.time, Ev::Arrival(i));
        }
        let mut t = SimTime::ZERO;
        while t < self.end_of_time {
            self.queue.push(t, Ev::Tick);
            t += TICK;
        }
        // Fault actions enter the queue last, so a fault coinciding
        // with a tick or arrival fires after it (FIFO tie-break). With
        // an empty plan nothing is pushed and the event stream is
        // byte-for-byte the fault-free one.
        for i in 0..self.fault_actions.len() {
            let at = self.fault_actions[i].0;
            self.queue.push(at, Ev::Fault(i));
        }

        let mut last_now = SimTime::ZERO;
        while let Some((now, ev)) = self.queue.pop() {
            if now > self.end_of_time {
                break;
            }
            last_now = now;
            self.pump_fabric(now);
            match ev {
                Ev::Arrival(idx) => self.on_arrival(idx, now),
                Ev::Finish(cid) => self.on_finish(cid, now),
                Ev::Tick => {
                    // Cooperative cancellation checkpoint: one relaxed
                    // load per two-minute tick when never cancelled.
                    if self.sim.cfg.cancel.is_cancelled() {
                        break;
                    }
                    self.on_tick(now)
                }
                Ev::NetWake => {
                    if self.pending_wake == Some(now) {
                        self.pending_wake = None;
                    }
                    self.schedule_pass(now);
                }
                Ev::Fault(i) => self.on_fault(i, now),
                Ev::Retry(entity) => self.on_retry(entity, now),
            }
            self.arm_net_wake(now);
        }

        // Stages still waiting out a backoff when the clock ran out
        // close their `retrying` state here, so faulted traces keep the
        // tiling invariant (every enter has a matching exit).
        if let Some(obs) = &self.obs {
            let mut open: Vec<u64> = self.fault_retrying.iter().copied().collect();
            open.sort_unstable();
            for entity in open {
                self.rec.state_exit(obs.stages, entity, last_now);
            }
        }

        let jobs = self
            .results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    let arrival = &self.sim.workload.arrivals[i];
                    JobResult {
                        name: self.sim.workload.job_of(arrival).name.clone(),
                        query: arrival.query,
                        submitted: arrival.time,
                        finished: None,
                        execution_time: None,
                        kills: self
                            .jobs
                            .iter()
                            .find(|j| j.query == arrival.query && !j.done)
                            .map(|j| j.exec.kills())
                            .unwrap_or(0),
                    }
                })
            })
            .collect();

        if self.rec.is_on() {
            if let Some(f) = self.fabric.as_mut() {
                let child = f.take_recorder();
                self.rec.absorb(child);
            }
            if let Some(d) = self.disks.as_mut() {
                let child = d.take_recorder();
                self.rec.absorb(child);
            }
            let id = self.rec.counter("sched/tasks_started");
            self.rec.counter_set(id, self.tasks_started);
            let id = self.rec.counter("sched/kills");
            self.rec.counter_set(id, self.total_kills);
            if self.fault_armed {
                let id = self.rec.counter("sched/fault_kills");
                self.rec.counter_set(id, self.fault_kills);
                let id = self.rec.counter("sched/fault_retries");
                self.rec.counter_set(id, self.fault_retries);
                let id = self.rec.counter("sched/jobs_abandoned");
                self.rec.counter_set(id, self.jobs_abandoned);
            }
        }

        let denom = 12.0 * self.sim.dc.n_servers() as f64 * self.observed_ms.max(1.0);
        let stats = SimStats {
            jobs,
            total_kills: self.total_kills,
            tasks_started: self.tasks_started,
            avg_total_utilization: (self.primary_core_ms + self.secondary_core_ms) / denom,
            avg_primary_utilization: self.primary_core_ms / denom,
            server_load: self.server_load,
            kills_per_server: self.kills_per_server,
            fabric: self.fabric.as_ref().map(|f| *f.stats()),
            disks: self.disks.as_ref().map(|p| *p.stats()),
            fault_kills: self.fault_kills,
            fault_retries: self.fault_retries,
            jobs_abandoned: self.jobs_abandoned,
        };
        (stats, self.rec)
    }

    /// Applies every fabric and disk event due by `now`: finished
    /// shuffle flows, fetch reads, and spill writes each count down
    /// their stage's gate; a fully landed shuffle opens the gate and
    /// makes the owning job runnable again.
    fn pump_fabric(&mut self, now: SimTime) {
        let mut tags: Vec<u64> = Vec::new();
        if let Some(fabric) = self.fabric.as_mut() {
            tags.extend(fabric.pump(now).into_iter().map(|c| c.tag));
        }
        if let Some(disks) = self.disks.as_mut() {
            tags.extend(disks.pump(now).into_iter().map(|c| c.tag));
        }
        let mut opened = false;
        for tag in tags {
            let job_id = (tag >> 32) as usize;
            let stage = (tag & 0xFFFF_FFFF) as usize;
            let gate = &mut self.shuffle_gate[job_id][stage];
            if let ShuffleGate::Waiting(left) = *gate {
                *gate = if left <= 1 {
                    opened = true;
                    if !self.in_runnable[job_id] {
                        self.in_runnable[job_id] = true;
                        self.runnable.push(job_id);
                    }
                    if let Some(obs) = &self.obs {
                        self.rec.state_enter(obs.stages, tag, "queued", now);
                    }
                    ShuffleGate::Open
                } else {
                    ShuffleGate::Waiting(left - 1)
                };
            }
        }
        if opened {
            self.schedule_pass(now);
        }
    }

    /// Keeps one NetWake queued at the next fabric or disk event time,
    /// so shuffle completions between ticks are handled promptly.
    fn arm_net_wake(&mut self, now: SimTime) {
        let t_net = self.fabric.as_ref().and_then(|f| f.next_event_time());
        let t_disk = self.disks.as_ref().and_then(|p| p.next_event_time());
        let Some(t) = [t_net, t_disk].into_iter().flatten().min() else {
            return;
        };
        let t = t.max(now);
        if t <= self.end_of_time && self.pending_wake != Some(t) {
            self.queue.push(t, Ev::NetWake);
            self.pending_wake = Some(t);
        }
    }

    fn on_arrival(&mut self, idx: usize, now: SimTime) {
        let arrival = &self.sim.workload.arrivals[idx];
        let job = self.sim.workload.job_of(arrival).clone();
        let n_stages = job.n_stages();
        let exec = JobExecution::new(job, now);
        let job_id = self.jobs.len();
        debug_assert_eq!(job_id, idx, "jobs must be created in arrival order");
        self.jobs.push(ActiveJob {
            exec,
            query: arrival.query,
            allowed: None,
            done: false,
        });
        self.shuffle_gate
            .push(vec![ShuffleGate::Unstarted; n_stages]);
        self.stage_servers.push(vec![
            StageSources::new();
            if self.models_io() { n_stages } else { 0 }
        ]);
        self.in_runnable.push(false);
        if self.sim.cfg.policy.uses_history() {
            self.select_for(job_id, now);
        }
        self.mark_runnable(job_id);
        self.schedule_pass(now);
    }

    /// Adds a job to the runnable list unless it is already there.
    fn mark_runnable(&mut self, job_id: usize) {
        if !self.in_runnable[job_id] {
            self.in_runnable[job_id] = true;
            self.runnable.push(job_id);
        }
    }

    /// Runs Algorithm 1 for job `j`, setting its allowed-server set.
    fn select_for(&mut self, j: usize, now: SimTime) {
        let length = self
            .history
            .job_length(&self.jobs[j].exec.job().name, &self.sim.cfg.thresholds);
        let req = max_concurrent_tasks(self.jobs[j].exec.job()) as u64;
        let utils = self.class_utils(now);
        let svc = self.svc.as_ref().expect("history policy has a service");
        let selection = select_classes(&mut self.rng, svc, &self.weights, length, req, &utils);
        let job = &mut self.jobs[j];
        match selection {
            // No class combination had room. Tez-H then sends the request
            // without a node label, and "RM-H selects destination servers
            // using its default policy" (§5.3) — i.e. the whole cluster.
            ClassSelection::None => job.allowed = None,
            sel => {
                let mut servers = Vec::new();
                for c in sel.class_ids() {
                    servers.extend_from_slice(&svc.classes()[c].servers);
                }
                job.allowed = Some(servers);
            }
        }
    }

    /// Current average utilization of each class's servers: the primary
    /// tenants' CPU *plus* the cores already allocated to harvested
    /// containers. The RM knows its own allocations, and Algorithm 1's
    /// "amount of available resources (or the amount of headroom) that
    /// the servers in the class currently exhibit" must subtract both —
    /// otherwise selection keeps admitting jobs into a class that is
    /// already full of containers.
    fn class_utils(&self, now: SimTime) -> Vec<f64> {
        let svc = self.svc.as_ref().expect("history policy has a service");
        svc.classes()
            .iter()
            .map(|c| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for &tid in &c.tenants {
                    let tenant = self.sim.dc.tenant(tid);
                    sum += self.sim.view.tenant_util(tid, now) * tenant.n_servers() as f64;
                    n += tenant.n_servers();
                }
                let allocated: u32 = c
                    .servers
                    .iter()
                    .map(|s| self.alloc[s.0 as usize].cores)
                    .sum();
                if n == 0 {
                    1.0
                } else {
                    (sum + allocated as f64 / SERVER_CAPACITY.cores as f64) / n as f64
                }
            })
            .collect()
    }

    fn on_finish(&mut self, cid: usize, now: SimTime) {
        if !self.containers[cid].alive {
            return; // killed earlier; stale event
        }
        let (job_id, stage, server, start) = {
            let c = &mut self.containers[cid];
            c.alive = false;
            (c.job, c.stage, c.server, c.start)
        };
        self.release(server, start, now);
        let job = &mut self.jobs[job_id];
        job.exec.finish_task(stage, now);
        if let Some(obs) = &mut self.obs {
            let stage_done =
                job.exec.pending_tasks(stage) == 0 && job.exec.running_tasks(stage) == 0;
            if stage_done {
                let entity = ((job_id as u64) << 32) | stage.0 as u64;
                obs.stage_running.remove(&entity);
                self.rec.state_exit(obs.stages, entity, now);
            }
        }
        if job.exec.is_complete() && !job.done {
            job.done = true;
            let name = job.exec.job().name.clone();
            let exec_time = job.exec.execution_time().expect("complete job has time");
            self.history.record(&name, exec_time);
            // Find the arrival index for this job: results are indexed by
            // arrival; job ids are allocated in arrival order.
            let arrival = &self.sim.workload.arrivals[job_id];
            self.results[job_id] = Some(JobResult {
                name,
                query: arrival.query,
                submitted: job.exec.submitted(),
                finished: Some(now),
                execution_time: Some(exec_time),
                kills: job.exec.kills(),
            });
        }
        self.schedule_pass(now);
    }

    /// Returns a container's resources; the caller has already marked
    /// it dead, so the roster can tombstone it in O(1) amortized (no
    /// position scan, no element shift).
    fn release(&mut self, server: ServerId, start: SimTime, now: SimTime) {
        self.alloc[server.0 as usize] -= CONTAINER;
        let containers = &self.containers;
        self.roster.release(server, |c| containers[c].alive);
        self.secondary_core_ms += CONTAINER.cores as f64 * now.since(start).as_millis() as f64;
    }

    fn on_tick(&mut self, now: SimTime) {
        self.last_tick = Some(now);
        // Utilization accounting: one lookup into the precomputed fleet
        // series, or — under the full-sweep reference — the per-server
        // scan it replaced (bitwise identical; pinned by tests).
        let fleet = match self.sim.cfg.sweep {
            TickSweep::Incremental => self.sim.view.fleet_util(now),
            TickSweep::Full => self.sim.view.fleet_util_scan(now),
        };
        let tick_ms = TICK.as_millis() as f64;
        self.primary_core_ms += fleet * 12.0 * self.sim.dc.n_servers() as f64 * tick_ms;
        self.observed_ms += tick_ms;

        // Replay the primaries' disk demand onto the modeled disks (the
        // pool was pumped to `now` before this event was dispatched, so
        // rate changes re-predict in-flight spill completions exactly).
        // The incremental sweep touches only disks with in-flight
        // secondary streams whose playback sample moved across this
        // tick boundary — a demand change cannot affect any other disk
        // now, and idle disks are refreshed lazily when a stream is
        // scheduled on them (see `refresh_primary_disk`). Ascending
        // server order matches the full sweep's, so completion events
        // re-predicted to equal instants keep the same FIFO order.
        let view = self.sim.view;
        let mut changed = 0usize;
        if let Some(disks) = self.disks.as_mut() {
            match self.sim.cfg.sweep {
                TickSweep::Full => {
                    for s in 0..view.n_servers() {
                        let sid = ServerId(s as u32);
                        disks.set_primary_util(now, sid, view.server_util(sid, now));
                        changed += 1;
                    }
                }
                TickSweep::Incremental => {
                    let slot = view.slot_of(now);
                    let active: Vec<ServerId> = disks.active_servers().collect();
                    for sid in active {
                        if view.server_sample_changed(sid, slot) {
                            disks.set_primary_util(now, sid, view.server_util(sid, now));
                            changed += 1;
                        }
                    }
                }
            }
        }

        // Reserve enforcement (primary-aware policies only).
        if self.sim.cfg.policy.primary_aware() {
            self.enforce_reserves(now);
        }

        // Record testbed load samples.
        if self.sim.cfg.record_server_load {
            for s in 0..self.sim.dc.n_servers() {
                self.server_load[s].push(LoadSample {
                    time: now,
                    primary_util: self.sim.view.server_util(ServerId(s as u32), now),
                    secondary_cores: self.alloc[s].cores,
                });
            }
        }

        self.schedule_pass(now);

        if let Some(obs) = &self.obs {
            let occupied = self.roster.occupied().count();
            self.rec.span_args(
                obs.track,
                "tick",
                now,
                now + TICK,
                &[("changed", changed as f64), ("occupied", occupied as f64)],
            );
            self.rec.observe(obs.tick_changed, changed as f64);
            self.rec.observe(obs.tick_occupied, occupied as f64);
            self.rec
                .gauge_at(obs.queue_len, now, self.queue.len() as f64);
        }
    }

    /// Kills youngest containers on servers whose reserve is violated.
    /// The incremental sweep walks the occupied-server index (ascending,
    /// matching the full scan's visit order); a server with no
    /// containers has nothing to kill, so the two sweeps are identical.
    fn enforce_reserves(&mut self, now: SimTime) {
        match self.sim.cfg.sweep {
            TickSweep::Full => {
                for s in 0..self.sim.dc.n_servers() {
                    self.enforce_server(ServerId(s as u32), now);
                }
            }
            TickSweep::Incremental => {
                let occupied: Vec<ServerId> = self.roster.occupied().collect();
                for sid in occupied {
                    self.enforce_server(sid, now);
                }
            }
        }
    }

    fn enforce_server(&mut self, sid: ServerId, now: SimTime) {
        let s = sid.0 as usize;
        if self.alloc[s].is_zero() {
            return;
        }
        let util = self.sim.view.server_util(sid, now);
        let allowance = secondary_capacity(util);
        while self.alloc[s].cores > allowance.cores || self.alloc[s].memory_mb > allowance.memory_mb
        {
            // Youngest = most recently started = last alive in the list.
            let (roster, containers) = (&mut self.roster, &self.containers);
            let Some(cid) = roster.youngest(sid, |c| containers[c].alive) else {
                break;
            };
            self.kill_container(cid, now, false);
        }
    }

    /// Kills one container: a reserve eviction (`fault == false`, the
    /// pre-fault path — re-dispatch is immediate) or a fault kill
    /// (`fault == true` — accounting goes to `fault_kills`, and the
    /// caller re-dispatches with backoff). Returns the stage entity.
    /// Either way the task returns to pending, so per-job `kills` (via
    /// [`JobExecution::kill_task`]) counts both under an armed plan.
    fn kill_container(&mut self, cid: usize, now: SimTime, fault: bool) -> u64 {
        let (job_id, stage, server, start, source_slot) = {
            let c = &mut self.containers[cid];
            debug_assert!(c.alive, "killing a dead container");
            c.alive = false;
            (c.job, c.stage, c.server, c.start, c.source_slot)
        };
        self.release(server, start, now);
        self.jobs[job_id].exec.kill_task(stage);
        // A killed task produced no output here; drop exactly its slot
        // from the stage's shuffle sources (the re-run records its new
        // home, which is what a later shuffle reads).
        if self.models_io() {
            self.stage_servers[job_id][stage.0].invalidate(source_slot);
        }
        if fault {
            self.fault_kills += 1;
        } else {
            self.total_kills += 1;
        }
        self.kills_per_server[server.0 as usize] += 1;
        let entity = ((job_id as u64) << 32) | stage.0 as u64;
        if let Some(obs) = &mut self.obs {
            obs.stage_running.remove(&entity);
            if !fault {
                self.rec
                    .state_enter(obs.stages, entity, "reserve_evicted", now);
            }
        }
        if !fault {
            self.mark_runnable(job_id);
        }
        entity
    }

    /// Applies one expanded fault action. Ordering within the event:
    /// containers on the faulted server die first, then the fabric and
    /// disk models abort in-flight shuffle parts touching it, then
    /// every stage whose shuffle lost a part tears the rest of its
    /// parts down and restarts from scratch — all interrupted stages
    /// re-dispatch with backoff (or their job is abandoned past the
    /// retry budget).
    fn on_fault(&mut self, i: usize, now: SimTime) {
        let (_, action) = self.fault_actions[i];
        if let Some(obs) = &self.obs {
            let name = match action {
                SchedFaultAction::Crash(_) => "fault/crash",
                SchedFaultAction::Restore(_) => "fault/restart",
                SchedFaultAction::UplinkDown(_) => "fault/uplink-down",
                SchedFaultAction::UplinkUp(_) => "fault/uplink-up",
                SchedFaultAction::DiskFail(_) => "fault/disk-fail",
                SchedFaultAction::DiskDegrade(..) => "fault/disk-degrade",
            };
            self.rec.instant(obs.track, name, now);
        }
        // Stage entities interrupted by this action (container kills
        // and gate teardowns), deduplicated and in deterministic order.
        let mut hit: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut tags: Vec<u64> = Vec::new();
        match action {
            SchedFaultAction::Crash(s) => {
                if !self.down[s.0 as usize] {
                    self.down[s.0 as usize] = true;
                    loop {
                        let (roster, containers) = (&mut self.roster, &self.containers);
                        let Some(cid) = roster.youngest(s, |c| containers[c].alive) else {
                            break;
                        };
                        hit.insert(self.kill_container(cid, now, true));
                    }
                    if let Some(f) = self.fabric.as_mut() {
                        tags.extend(f.fail_endpoint(now, s));
                    }
                    if let Some(d) = self.disks.as_mut() {
                        tags.extend(d.fail_server(now, s));
                    }
                }
            }
            SchedFaultAction::Restore(s) => {
                if self.down[s.0 as usize] {
                    self.down[s.0 as usize] = false;
                    if let Some(f) = self.fabric.as_mut() {
                        f.restore_endpoint(now, s);
                    }
                }
            }
            SchedFaultAction::UplinkDown(rack) => {
                if let Some(f) = self.fabric.as_mut() {
                    let (up, dn) = {
                        let t = f.topology();
                        (t.rack_up(rack), t.rack_down(rack))
                    };
                    tags.extend(f.set_link_down(now, up));
                    tags.extend(f.set_link_down(now, dn));
                }
            }
            SchedFaultAction::UplinkUp(rack) => {
                if let Some(f) = self.fabric.as_mut() {
                    let (up, dn) = {
                        let t = f.topology();
                        (t.rack_up(rack), t.rack_down(rack))
                    };
                    f.set_link_up(now, up);
                    f.set_link_up(now, dn);
                }
            }
            SchedFaultAction::DiskFail(s) => {
                if let Some(d) = self.disks.as_mut() {
                    tags.extend(d.fail_server(now, s));
                }
            }
            SchedFaultAction::DiskDegrade(s, factor) => {
                if let Some(d) = self.disks.as_mut() {
                    d.set_degrade(now, s, factor);
                }
            }
        }
        // Any gate that lost a shuffle part restarts from scratch. The
        // tag's surviving parts must abort too — a gate reset to
        // `Unstarted` re-counts its parts, and a leftover completion
        // under the same tag would decrement the new gate spuriously.
        let mut resets: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for &tag in &tags {
            let (job, stage) = ((tag >> 32) as usize, (tag & 0xFFFF_FFFF) as usize);
            if !self.jobs[job].done
                && matches!(self.shuffle_gate[job][stage], ShuffleGate::Waiting(_))
            {
                resets.insert(tag);
            }
        }
        if !resets.is_empty() {
            let set: std::collections::HashSet<u64> = resets.iter().copied().collect();
            if let Some(f) = self.fabric.as_mut() {
                f.abort_flows_with_tags(now, &set);
            }
            if let Some(d) = self.disks.as_mut() {
                d.abort_streams_with_tags(now, &set);
            }
            for &tag in &resets {
                self.shuffle_gate[(tag >> 32) as usize][(tag & 0xFFFF_FFFF) as usize] =
                    ShuffleGate::Unstarted;
                hit.insert(tag);
            }
        }
        for entity in hit {
            self.fault_retry(entity, now);
        }
        self.schedule_pass(now);
    }

    /// A fault interrupted `entity`'s stage: charge one retry and queue
    /// a delayed re-dispatch with exponential backoff and jitter, or —
    /// past the plan's budget — abandon the whole job (the scheduler
    /// analogue of durability's permanently lost blocks).
    fn fault_retry(&mut self, entity: u64, now: SimTime) {
        let job = (entity >> 32) as usize;
        if self.jobs[job].done {
            return;
        }
        let a = self.fault_attempts.entry(entity).or_insert(0);
        *a += 1;
        let attempt = *a;
        let plan = &self.sim.cfg.faults;
        if attempt <= plan.max_retries {
            self.fault_retries += 1;
            let at = now + plan.backoff.delay(self.sim.cfg.seed, entity, attempt);
            self.queue.push(at, Ev::Retry(entity));
            if let Some(obs) = &self.obs {
                self.rec.state_enter(obs.stages, entity, "failed", now);
                self.rec.state_enter(obs.stages, entity, "retrying", now);
            }
            self.fault_retrying.insert(entity);
        } else {
            self.jobs[job].done = true;
            self.jobs_abandoned += 1;
            if let Some(obs) = &self.obs {
                self.rec.state_enter(obs.stages, entity, "failed", now);
                self.rec.state_exit(obs.stages, entity, now);
            }
            self.fault_retrying.remove(&entity);
        }
    }

    /// A stage's backoff elapsed: it leaves the `retrying` hold (which
    /// [`Runner::try_place_one`] respects) and competes for capacity
    /// again at the next pass.
    fn on_retry(&mut self, entity: u64, now: SimTime) {
        let job = (entity >> 32) as usize;
        let was_held = self.fault_retrying.remove(&entity);
        if !self.jobs[job].done {
            if was_held {
                if let Some(obs) = &self.obs {
                    self.rec.state_enter(obs.stages, entity, "queued", now);
                }
            }
            self.mark_runnable(job);
            self.schedule_pass(now);
        } else if was_held {
            // The job was abandoned (another stage exhausted its
            // budget) while this one waited out its backoff; close its
            // open state so the trace keeps tiling.
            if let Some(obs) = &self.obs {
                self.rec.state_exit(obs.stages, entity, now);
            }
        }
    }

    /// Tries to place every ready task of every runnable job. Iterates
    /// the runnable list in place (placement never mutates it — only
    /// arrivals, kills, and shuffle completions do, none of which can
    /// fire mid-pass), so a pass allocates nothing beyond the reused
    /// blocked-flag scratch buffer.
    fn schedule_pass(&mut self, now: SimTime) {
        // Jobs submitted but not finished, with ready tasks.
        let (runnable, in_runnable, jobs) = (&mut self.runnable, &mut self.in_runnable, &self.jobs);
        runnable.retain(|&j| {
            let keep = !jobs[j].done;
            if !keep {
                in_runnable[j] = false;
            }
            keep
        });
        let n = self.runnable.len();
        let mut blocked = std::mem::take(&mut self.blocked_scratch);
        blocked.clear();
        blocked.resize(n, false);
        loop {
            let mut progressed = false;
            for (slot, slot_blocked) in blocked.iter_mut().enumerate() {
                let j = self.runnable[slot];
                if *slot_blocked || self.jobs[j].done {
                    continue;
                }
                if self.jobs[j].exec.ready_task_count() == 0 {
                    continue;
                }
                if self.try_place_one(j, now) {
                    progressed = true;
                } else {
                    *slot_blocked = true;
                }
            }
            if !progressed {
                break;
            }
        }
        debug_assert_eq!(self.runnable.len(), n, "runnable mutated mid-pass");
        self.blocked_scratch = blocked;
    }

    /// Places one ready task of job `j`, returning whether it succeeded.
    /// A ready stage whose shuffle is still crossing the fabric is
    /// skipped (and its shuffle is started if it has not been).
    fn try_place_one(&mut self, j: usize, now: SimTime) -> bool {
        let ready = self.jobs[j].exec.ready_stages();
        let mut target = None;
        for stage in ready {
            // A stage waiting out a fault backoff is invisible to the
            // scheduler until its retry fires.
            if self.fault_armed
                && self
                    .fault_retrying
                    .contains(&(((j as u64) << 32) | stage.0 as u64))
            {
                continue;
            }
            if self.gate_for(j, stage, now) == ShuffleGate::Open {
                target = Some(stage);
                break;
            }
        }
        let Some(stage) = target else {
            return false;
        };
        let Some(server) = self.find_server(j, now) else {
            return false;
        };
        let job = &mut self.jobs[j];
        job.exec.start_task(stage);
        let duration = job.exec.task_duration(stage);
        let cid = self.containers.len();
        let source_slot = if self.models_io() {
            self.stage_servers[j][stage.0].record(server)
        } else {
            u32::MAX
        };
        self.containers.push(Container {
            job: j,
            stage,
            server,
            start: now,
            alive: true,
            source_slot,
        });
        self.alloc[server.0 as usize] += CONTAINER;
        self.roster.place(server, cid);
        self.tasks_started += 1;
        if let Some(obs) = &mut self.obs {
            let entity = ((j as u64) << 32) | stage.0 as u64;
            if obs.stage_running.insert(entity) {
                self.rec.state_enter(obs.stages, entity, "running", now);
            }
        }
        self.queue.push(now + duration, Ev::Finish(cid));
        true
    }

    /// The shuffle gate of `(j, stage)`, starting the shuffle on first
    /// contact. Without a data-movement model every gate is open.
    fn gate_for(&mut self, j: usize, stage: StageId, now: SimTime) -> ShuffleGate {
        if !self.models_io() {
            return ShuffleGate::Open;
        }
        match self.shuffle_gate[j][stage.0] {
            ShuffleGate::Unstarted => self.start_shuffle(j, stage, now),
            g => g,
        }
    }

    /// Launches the aggregate shuffle feeding `stage`: one transfer per
    /// distinct upstream server (capped at [`MAX_SHUFFLE_FLOWS`]), each
    /// to a server drawn from the job's placement pool — where the
    /// consuming tasks are about to run. Each transfer contributes a
    /// fabric flow (network on), plus a fetch read on the source disk
    /// and a spill write on the destination disk (disks on); the gate
    /// waits for all of them.
    fn start_shuffle(&mut self, j: usize, stage: StageId, now: SimTime) -> ShuffleGate {
        let total = stage_shuffle_bytes(
            self.jobs[j].exec.job(),
            stage,
            self.sim.cfg.shuffle_bytes_per_task,
        );
        let mut sources: Vec<ServerId> = Vec::new();
        if total > 0 {
            let deps = self.jobs[j].exec.job().stages[stage.0].deps.clone();
            for d in &deps {
                self.stage_servers[j][d.0].distinct_into(MAX_SHUFFLE_FLOWS, &mut sources);
                if sources.len() >= MAX_SHUFFLE_FLOWS {
                    break;
                }
            }
            if self.fault_armed {
                // Upstream output on a crashed server is unreachable;
                // fetching from it would park at rate 0 until a restart
                // that may never come, so those sources drop out (the
                // bytes are re-read from the surviving copies).
                sources.retain(|s| !self.down[s.0 as usize]);
            }
        }
        let gate = if total == 0 || sources.is_empty() {
            ShuffleGate::Open
        } else {
            let n = sources.len() as u64;
            let tag = ((j as u64) << 32) | stage.0 as u64;
            let mut parts = 0u32;
            for (i, src) in sources.iter().enumerate() {
                let dst = self.shuffle_dst(j);
                // Spread the volume evenly; the first transfer carries
                // the remainder.
                let bytes = total / n + if i == 0 { total % n } else { 0 };
                if let Some(fabric) = self.fabric.as_mut() {
                    fabric.schedule_flow(now, *src, dst, bytes, tag);
                    parts += 1;
                }
                if self.disks.is_some() {
                    // Disks idle since the last tick were skipped by the
                    // incremental demand replay; bring these two up to
                    // date (against the last tick's sample) before their
                    // streams price themselves.
                    self.refresh_primary_disk(*src, now);
                    self.refresh_primary_disk(dst, now);
                    let disks = self.disks.as_mut().expect("checked above");
                    disks.schedule_stream(now, *src, IoDir::Read, bytes, tag);
                    disks.schedule_stream(now, dst, IoDir::Write, bytes, tag);
                    parts += 2;
                }
            }
            ShuffleGate::Waiting(parts)
        };
        if let Some(obs) = &self.obs {
            // A stage is born (state-wise) on first gate contact, which
            // try_place_one guarantees happens before any placement.
            let entity = ((j as u64) << 32) | stage.0 as u64;
            let state = match gate {
                ShuffleGate::Waiting(_) if self.fabric.is_some() => "blocked_on_net",
                ShuffleGate::Waiting(_) => "blocked_on_disk_read",
                _ => "queued",
            };
            self.rec.state_enter(obs.stages, entity, state, now);
        }
        self.shuffle_gate[j][stage.0] = gate;
        self.arm_net_wake(now);
        gate
    }

    /// Re-reads `server`'s primary utilization *as of the last tick*
    /// and pushes it into the disk pool. For a disk the incremental
    /// tick sweep skipped (no in-flight streams), this lands exactly
    /// the value the full sweep would have set at that tick — ticks sit
    /// on the playback sample grid, so the sample cannot have moved
    /// since — and it early-outs bitwise-unchanged values, so calling
    /// it under either sweep mode never perturbs the trajectory.
    fn refresh_primary_disk(&mut self, server: ServerId, now: SimTime) {
        let Some(tick) = self.last_tick else {
            return; // no tick yet: the pool still holds its initial state
        };
        let util = self.sim.view.server_util(server, tick);
        if let Some(disks) = self.disks.as_mut() {
            disks.set_primary_util(now, server, util);
        }
    }

    /// Free secondary capacity of a server under the active policy.
    fn free_capacity(&self, sid: ServerId, now: SimTime) -> Resources {
        let cap = if self.sim.cfg.policy.primary_aware() {
            secondary_capacity(self.sim.view.server_util(sid, now))
        } else {
            SERVER_CAPACITY
        };
        cap.saturating_sub(self.alloc[sid.0 as usize])
    }

    /// Picks a destination server for one container of job `j` with
    /// probability proportional to free resources (§5.3: "RM-H schedules
    /// a container to a heartbeating server of the correct class with a
    /// probability proportional to the server's available resources").
    ///
    /// Small pools are sampled exactly; large pools are approximated by
    /// uniformly probing [`PLACEMENT_PROBES`] servers and then choosing
    /// among the probes proportionally — same balancing behaviour without
    /// a full scan per container.
    fn find_server(&mut self, j: usize, now: SimTime) -> Option<ServerId> {
        let n_servers = self.sim.dc.n_servers();
        let pool_len = match &self.jobs[j].allowed {
            Some(list) => {
                if list.is_empty() {
                    return None;
                }
                list.len()
            }
            None => n_servers,
        };
        let server_at = |runner: &Self, idx: usize| -> ServerId {
            match &runner.jobs[j].allowed {
                Some(list) => list[idx],
                None => ServerId(idx as u32),
            }
        };

        let mut candidates: Vec<ServerId> = Vec::with_capacity(PLACEMENT_PROBES.min(pool_len));
        if pool_len <= 4 * PLACEMENT_PROBES {
            candidates.extend((0..pool_len).map(|i| server_at(self, i)));
        } else {
            for _ in 0..PLACEMENT_PROBES {
                let idx = self.rng.random_range(0..pool_len);
                candidates.push(server_at(self, idx));
            }
        }

        // Probabilistic load balancing (weight ∝ free cores) is a YARN-H
        // extension (Table 1); stock YARN and YARN-PT place on whichever
        // heartbeating server fits first — uniform among fitting probes.
        let proportional = self.sim.cfg.policy.uses_history();
        let weights: Vec<f64> = candidates
            .iter()
            .map(|&sid| {
                // A crashed server stops heartbeating, so the RM never
                // offers it (fault plans only; the mask is all-false —
                // and unread — otherwise).
                if self.fault_armed && self.down[sid.0 as usize] {
                    return 0.0;
                }
                let free = self.free_capacity(sid, now);
                if free.fits(CONTAINER) {
                    if proportional {
                        free.cores as f64
                    } else {
                        1.0
                    }
                } else {
                    0.0
                }
            })
            .collect();
        if weights.iter().all(|&w| w == 0.0) {
            return None;
        }
        let pick = harvest_sim::dist::weighted_index(&mut self.rng, &weights)?;
        Some(candidates[pick])
    }

    /// Draws the destination server for one shuffle part from the
    /// job's placement pool — one RNG call, exactly as before — then,
    /// under an armed fault plan only, walks forward deterministically
    /// past crashed servers (no extra randomness, so the fault-free
    /// draw stream is untouched). With the whole pool down the original
    /// draw stands and the part parks until a restart rescues it.
    fn shuffle_dst(&mut self, j: usize) -> ServerId {
        let (idx, len) = match &self.jobs[j].allowed {
            Some(list) if !list.is_empty() => (self.rng.random_range(0..list.len()), list.len()),
            _ => {
                let n = self.sim.dc.n_servers();
                (self.rng.random_range(0..n), n)
            }
        };
        let at = |runner: &Self, i: usize| match &runner.jobs[j].allowed {
            Some(list) if !list.is_empty() => list[i],
            _ => ServerId(i as u32),
        };
        let mut dst = at(self, idx);
        if self.fault_armed && self.down[dst.0 as usize] {
            for step in 1..len {
                let cand = at(self, (idx + step) % len);
                if !self.down[cand.0 as usize] {
                    dst = cand;
                    break;
                }
            }
        }
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harvest_jobs::tpcds::tpcds_suite;
    use harvest_trace::datacenter::DatacenterProfile;

    fn testbed() -> (Datacenter, UtilizationView) {
        let specs = DatacenterProfile::testbed_dc9(42);
        let dc = Datacenter::from_specs("testbed".into(), &specs, 42);
        let view = UtilizationView::unscaled(&dc);
        (dc, view)
    }

    fn small_workload(seed: u64, hours: u64) -> Workload {
        let mut rng = stream_rng(seed, "wl");
        Workload::poisson(
            &mut rng,
            tpcds_suite(),
            SimDuration::from_secs(300),
            SimDuration::from_hours(hours),
        )
    }

    fn run(policy: SchedPolicy, seed: u64) -> SimStats {
        let (dc, view) = testbed();
        let wl = small_workload(seed, 2);
        let mut cfg = SchedSimConfig::testbed(policy, seed);
        cfg.horizon = SimDuration::from_hours(2);
        cfg.drain = SimDuration::from_hours(3);
        SchedSim::new(&dc, &view, &wl, cfg).run()
    }

    #[test]
    fn stock_never_kills() {
        let stats = run(SchedPolicy::Stock, 1);
        assert_eq!(stats.total_kills, 0);
        assert!(stats.completed_jobs() > 0);
    }

    #[test]
    fn primary_aware_kills_under_bursts() {
        let stats = run(SchedPolicy::PrimaryAware, 1);
        // The DC-9 testbed mix has periodic and unpredictable tenants, so
        // some kills must happen over two hours.
        assert!(stats.total_kills > 0, "expected kills under YARN-PT");
    }

    #[test]
    fn all_policies_complete_most_jobs() {
        for policy in SchedPolicy::ALL {
            let stats = run(policy, 2);
            assert!(
                stats.completion_rate() > 0.7,
                "{policy} completed only {:.0}%",
                stats.completion_rate() * 100.0
            );
        }
    }

    #[test]
    fn stock_is_fastest_history_beats_pt() {
        // Figure 11's ordering. Average over a few seeds to be robust.
        let mut stock = 0.0;
        let mut pt = 0.0;
        let mut h = 0.0;
        let seeds = [3u64, 4, 5];
        for &s in &seeds {
            stock += run(SchedPolicy::Stock, s).mean_execution_secs();
            pt += run(SchedPolicy::PrimaryAware, s).mean_execution_secs();
            h += run(SchedPolicy::History, s).mean_execution_secs();
        }
        assert!(
            stock < pt,
            "stock ({stock:.0}s) should beat YARN-PT ({pt:.0}s)"
        );
        assert!(h < pt, "YARN-H ({h:.0}s) should beat YARN-PT ({pt:.0}s)");
    }

    #[test]
    fn utilization_accounting_is_sane() {
        let stats = run(SchedPolicy::History, 6);
        assert!(stats.avg_primary_utilization > 0.0);
        assert!(stats.avg_total_utilization >= stats.avg_primary_utilization);
        assert!(stats.avg_total_utilization <= 1.0);
    }

    #[test]
    fn recording_captures_all_servers() {
        let (dc, view) = testbed();
        let wl = small_workload(7, 1);
        let mut cfg = SchedSimConfig::testbed(SchedPolicy::History, 7);
        cfg.horizon = SimDuration::from_hours(1);
        cfg.drain = SimDuration::from_hours(1);
        cfg.record_server_load = true;
        let stats = SchedSim::new(&dc, &view, &wl, cfg).run();
        assert_eq!(stats.server_load.len(), dc.n_servers());
        assert!(stats.server_load[0].len() >= 30, "expected >=30 ticks");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(SchedPolicy::History, 9);
        let b = run(SchedPolicy::History, 9);
        assert_eq!(a.total_kills, b.total_kills);
        assert_eq!(a.tasks_started, b.tasks_started);
        assert_eq!(a.mean_execution_secs(), b.mean_execution_secs());
    }

    fn run_netted(policy: SchedPolicy, seed: u64, network: Option<NetworkConfig>) -> SimStats {
        let (dc, view) = testbed();
        let wl = small_workload(seed, 1);
        let mut cfg = SchedSimConfig::testbed(policy, seed);
        cfg.horizon = SimDuration::from_hours(1);
        cfg.drain = SimDuration::from_hours(3);
        cfg.network = network;
        SchedSim::new(&dc, &view, &wl, cfg).run()
    }

    #[test]
    fn shuffle_flows_stretch_stage_runtimes() {
        // A slow fabric (1 GbE) makes every reducer wait on its shuffle;
        // execution times must stretch relative to free data movement.
        let off = run_netted(SchedPolicy::Stock, 11, None);
        let slow_net = NetworkConfig {
            nic_gbps: 1.0,
            ..NetworkConfig::datacenter()
        };
        let on = run_netted(SchedPolicy::Stock, 11, Some(slow_net));
        assert!(
            on.completed_jobs() > 0,
            "nothing completed under the fabric"
        );
        assert!(
            on.mean_execution_secs() > off.mean_execution_secs(),
            "shuffles were free? on {:.0}s off {:.0}s",
            on.mean_execution_secs(),
            off.mean_execution_secs()
        );
    }

    #[test]
    fn faster_fabric_hurts_less() {
        let slow = run_netted(
            SchedPolicy::Stock,
            12,
            Some(NetworkConfig {
                nic_gbps: 0.5,
                ..NetworkConfig::datacenter()
            }),
        );
        let fast = run_netted(SchedPolicy::Stock, 12, Some(NetworkConfig::non_blocking()));
        assert!(
            fast.mean_execution_secs() <= slow.mean_execution_secs(),
            "faster fabric slower? fast {:.0}s slow {:.0}s",
            fast.mean_execution_secs(),
            slow.mean_execution_secs()
        );
    }

    #[test]
    fn networked_scheduling_is_deterministic() {
        let net = Some(NetworkConfig::datacenter());
        let a = run_netted(SchedPolicy::History, 13, net);
        let b = run_netted(SchedPolicy::History, 13, net);
        assert_eq!(a.tasks_started, b.tasks_started);
        assert_eq!(a.total_kills, b.total_kills);
        assert_eq!(a.mean_execution_secs(), b.mean_execution_secs());
    }

    fn run_disked(seed: u64, network: Option<NetworkConfig>, disk: Option<DiskConfig>) -> SimStats {
        let (dc, view) = testbed();
        let wl = small_workload(seed, 1);
        let mut cfg = SchedSimConfig::testbed(SchedPolicy::Stock, seed);
        cfg.horizon = SimDuration::from_hours(1);
        cfg.drain = SimDuration::from_hours(3);
        cfg.network = network;
        cfg.disk = disk;
        SchedSim::new(&dc, &view, &wl, cfg).run()
    }

    #[test]
    fn spill_writes_stretch_stage_runtimes() {
        // Disks alone (free wire): every shuffle still pays its fetch
        // read and spill write against the primaries' disk demand, so
        // execution times stretch relative to free data movement.
        let off = run_disked(14, None, None);
        let on = run_disked(14, None, Some(DiskConfig::datacenter()));
        assert!(on.completed_jobs() > 0, "nothing completed on disks");
        assert!(
            on.mean_execution_secs() > off.mean_execution_secs(),
            "spills were free? on {:.0}s off {:.0}s",
            on.mean_execution_secs(),
            off.mean_execution_secs()
        );
    }

    #[test]
    fn disk_and_network_compose() {
        // Wire and platter both modeled: a stage waits for the slowest
        // of flow, fetch, and spill, so the composition is at least as
        // slow as the network alone.
        let net = NetworkConfig::datacenter();
        let net_only = run_disked(15, Some(net), None);
        let both = run_disked(15, Some(net), Some(DiskConfig::datacenter()));
        assert!(both.completed_jobs() > 0);
        assert!(
            both.mean_execution_secs() >= net_only.mean_execution_secs(),
            "adding disks sped jobs up? both {:.0}s net {:.0}s",
            both.mean_execution_secs(),
            net_only.mean_execution_secs()
        );
    }

    /// The tick-sweep oracle, testbed-sized: the change-driven tick and
    /// the full-fleet reference sweep must be indistinguishable — same
    /// placements, kills, makespans, utilization bits, and transfer
    /// stats. (The randomized DC-9 version lives in tests/properties.rs.)
    #[test]
    fn incremental_tick_matches_full_sweep_bitwise() {
        let (dc, view) = testbed();
        let wl = small_workload(21, 1);
        for policy in [SchedPolicy::PrimaryAware, SchedPolicy::History] {
            let run = |sweep: TickSweep| {
                let mut cfg = SchedSimConfig::testbed(policy, 21);
                cfg.horizon = SimDuration::from_hours(1);
                cfg.drain = SimDuration::from_hours(2);
                cfg.network = Some(NetworkConfig::datacenter());
                cfg.disk = Some(DiskConfig::datacenter());
                cfg.sweep = sweep;
                SchedSim::new(&dc, &view, &wl, cfg).run()
            };
            let inc = run(TickSweep::Incremental);
            let full = run(TickSweep::Full);
            // The comparison must exercise the interesting paths: tasks
            // placed, disk streams priced against replayed primary
            // demand, and reserve-violation kills.
            assert!(inc.tasks_started > 0, "{policy}: nothing placed");
            assert!(
                inc.disks.expect("disks on").completed > 0,
                "{policy}: no disk streams ran"
            );
            assert!(inc.total_kills > 0, "{policy}: no kills exercised");
            assert_eq!(
                inc.avg_total_utilization.to_bits(),
                full.avg_total_utilization.to_bits(),
                "{policy}: utilization accounting diverged"
            );
            assert_eq!(inc, full, "{policy}: sweeps diverged");
        }
    }

    #[test]
    fn disked_scheduling_is_deterministic() {
        let run = || {
            run_disked(
                16,
                Some(NetworkConfig::datacenter()),
                Some(DiskConfig::datacenter()),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.tasks_started, b.tasks_started);
        assert_eq!(a.total_kills, b.total_kills);
        assert_eq!(a.mean_execution_secs(), b.mean_execution_secs());
    }

    fn run_faulted(seed: u64, faults: FaultPlan, io: bool) -> SimStats {
        let (dc, view) = testbed();
        let wl = small_workload(seed, 2);
        let mut cfg = SchedSimConfig::testbed(SchedPolicy::Stock, seed);
        cfg.horizon = SimDuration::from_hours(2);
        cfg.drain = SimDuration::from_hours(3);
        if io {
            cfg.network = Some(NetworkConfig::datacenter());
            cfg.disk = Some(DiskConfig::datacenter());
        }
        cfg.faults = faults;
        SchedSim::new(&dc, &view, &wl, cfg).run()
    }

    fn rack_blip(rack: u32, at_min: u64, restore_min: u64) -> Vec<harvest_sim::fault::FaultEvent> {
        use harvest_sim::fault::FaultEvent;
        vec![
            FaultEvent {
                at: SimTime::ZERO + SimDuration::from_mins(at_min),
                kind: FaultKind::RackPowerLoss { rack },
            },
            FaultEvent {
                at: SimTime::ZERO + SimDuration::from_mins(restore_min),
                kind: FaultKind::RackPowerRestore { rack },
            },
        ]
    }

    /// The no-fault oracle: an armed plan whose only event is far past
    /// the horizon exercises the armed code path (down mask, retry
    /// holds, destination probing) without ever firing — and must be
    /// indistinguishable from `FaultPlan::none()`, stats bitwise equal.
    #[test]
    fn armed_plan_with_unreachable_events_is_bitwise_identical() {
        use harvest_sim::fault::FaultEvent;
        let clean = run_faulted(31, FaultPlan::none(), true);
        let armed = run_faulted(
            31,
            FaultPlan::with_events(vec![FaultEvent {
                at: SimTime::ZERO + SimDuration::from_days(365),
                kind: FaultKind::ServerCrash { server: 0 },
            }]),
            true,
        );
        assert_eq!(clean, armed, "an unreachable fault plan changed the run");
        assert_eq!(armed.fault_kills, 0);
        assert_eq!(armed.jobs_abandoned, 0);
    }

    #[test]
    fn rack_power_loss_kills_containers_and_slows_jobs() {
        let clean = run_faulted(33, FaultPlan::none(), false);
        let mut events = rack_blip(0, 30, 45);
        events.extend(rack_blip(1, 60, 80));
        events.extend(rack_blip(2, 90, 110));
        let faulted = run_faulted(33, FaultPlan::with_events(events), false);
        assert!(faulted.fault_kills > 0, "rack loss killed no containers");
        assert!(faulted.fault_retries > 0, "no interrupted stage retried");
        assert_eq!(
            faulted.total_kills, clean.total_kills,
            "fault kills leaked into the reserve-kill counter"
        );
        assert!(faulted.completed_jobs() > 0, "nothing survived the blips");
        assert!(
            faulted.mean_execution_secs() > clean.mean_execution_secs(),
            "faults were free: faulted {:.0}s vs clean {:.0}s",
            faulted.mean_execution_secs(),
            clean.mean_execution_secs()
        );
    }

    #[test]
    fn exhausted_retry_budget_abandons_jobs() {
        let mut plan = FaultPlan::with_events(rack_blip(0, 30, 45));
        plan.max_retries = 0;
        let stats = run_faulted(35, plan, false);
        assert!(stats.fault_kills > 0, "rack loss killed no containers");
        assert_eq!(stats.fault_retries, 0, "retry budget was zero");
        assert!(
            stats.jobs_abandoned > 0,
            "no job was abandoned with a zero retry budget"
        );
        assert!(
            stats.completion_rate() < 1.0,
            "abandoned jobs still completed"
        );
    }

    #[test]
    fn faulted_scheduling_is_deterministic() {
        use harvest_sim::fault::FaultEvent;
        // A rolling wave of crashes — one every three minutes, each
        // restored twelve minutes later — is dense enough to intersect
        // the bursty testbed schedule no matter how it shifts.
        let mut events = Vec::new();
        for k in 0..40u32 {
            let server = (k * 7) % 102;
            let t = SimTime::ZERO + SimDuration::from_mins(10 + 3 * k as u64);
            events.push(FaultEvent {
                at: t,
                kind: FaultKind::ServerCrash { server },
            });
            events.push(FaultEvent {
                at: t + SimDuration::from_mins(12),
                kind: FaultKind::ServerRestart { server },
            });
        }
        let a = run_faulted(37, FaultPlan::with_events(events.clone()), true);
        let b = run_faulted(37, FaultPlan::with_events(events), true);
        assert_eq!(a, b, "faulted runs diverged across replays");
        assert!(
            a.fault_kills + a.fault_retries > 0,
            "plan never bit (no kills, no interrupted shuffles)"
        );
    }

    /// The observability oracle: running with a live recorder must not
    /// perturb the trajectory — the returned stats are bitwise identical
    /// to a recorder-off run, while the recorder itself mirrors the
    /// run's totals and carries the absorbed fabric/disk children.
    #[test]
    fn recording_does_not_change_the_trajectory() {
        let (dc, view) = testbed();
        let wl = small_workload(23, 1);
        let mut cfg = SchedSimConfig::testbed(SchedPolicy::PrimaryAware, 23);
        cfg.horizon = SimDuration::from_hours(1);
        cfg.drain = SimDuration::from_hours(2);
        cfg.network = Some(NetworkConfig::datacenter());
        cfg.disk = Some(DiskConfig::datacenter());
        let sim = SchedSim::new(&dc, &view, &wl, cfg);

        let plain = sim.run();
        let mut rec = Recorder::new("sched-test");
        let recorded = sim.run_recorded(&mut rec);
        assert_eq!(plain, recorded, "recording changed the trajectory");

        assert!(rec.is_on(), "run_recorded must hand the recorder back");
        assert_eq!(
            rec.counter_value("sched/tasks_started"),
            Some(recorded.tasks_started)
        );
        assert_eq!(rec.counter_value("sched/kills"), Some(recorded.total_kills));
        let fstats = recorded.fabric.expect("network on");
        assert_eq!(
            rec.counter_value("fabric/completed"),
            Some(fstats.completed)
        );
        let dstats = recorded.disks.expect("disks on");
        assert_eq!(rec.counter_value("disk/completed"), Some(dstats.completed));

        // The sched track saw every tick, and the tick histograms have
        // the same population.
        let report = rec.metrics_json();
        assert!(report.contains("\"sched/tick_changed_disks\""));
        assert!(report.contains("\"sched/tick_occupied_servers\""));
    }
}
