//! Streaming statistics, percentile sets, and histograms.
//!
//! The experiment harness reports the same aggregates the paper does:
//! means with min/max intervals over five runs, 99th-percentile latencies,
//! and CDFs. These small self-contained accumulators back all of that.

use std::fmt;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), or 0.0 if the mean is zero.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation, or +∞ if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or -∞ if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for StreamingStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// Exact percentile computation over a retained sample set.
///
/// Keeps every pushed value; call [`Percentiles::quantile`] to query. Uses
/// linear interpolation between closest ranks (the common "type 7"
/// definition).
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty set.
    pub fn new() -> Self {
        Percentiles {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
    }

    /// Adds many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        self.values.extend(xs);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the `q`-quantile (`q` in `[0, 1]`), or `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in percentile set"));
            self.sorted = true;
        }
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.values[lo] * (1.0 - frac) + self.values[hi] * frac)
    }

    /// Convenience wrapper for the 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the retained values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram bounds inverted: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The left edge of bin `i`.
    pub fn bin_left(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * i as f64
    }

    /// Reads quantile `q` off the histogram as the right edge of the
    /// first bin whose CDF reaches `q`. Returns `None` when the
    /// histogram is empty, and the histogram's upper bound when the
    /// quantile lands in the overflow. Resolution is one bin width.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let cdf = self.cdf();
        Some(match cdf.iter().position(|&f| f >= q) {
            Some(i) => self.bin_left(i + 1),
            None => self.hi,
        })
    }

    /// Empirical CDF evaluated at each bin's *right* edge, as fractions in
    /// `[0, 1]`. Underflow counts toward every point; overflow toward none.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = self.underflow;
        let total = self.count.max(1) as f64;
        self.bins
            .iter()
            .map(|&c| {
                acc += c;
                acc as f64 / total
            })
            .collect()
    }
}

/// A CDF over raw samples: returns `(value, fraction ≤ value)` pairs, one
/// per sample, as the paper's CDF figures plot.
pub fn empirical_cdf(mut samples: Vec<f64>) -> Vec<(f64, f64)> {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
    let n = samples.len();
    samples
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Fraction of `samples` that are `<= threshold`; useful for reading CDF
/// points in tests ("at least 80% of tenants changed groups ≤ 8 times").
pub fn fraction_at_or_below(samples: &[f64], threshold: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&x| x <= threshold).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_stats_basics() {
        let mut s = StreamingStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn streaming_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..1_000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &data[..400] {
            a.push(x);
        }
        for &x in &data[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut p = Percentiles::new();
        p.extend((1..=100).map(|i| i as f64));
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        let median = p.quantile(0.5).unwrap();
        assert!((median - 50.5).abs() < 1e-9);
        let p99 = p.p99().unwrap();
        assert!((p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentiles_single_and_empty() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        p.push(42.0);
        assert_eq!(p.quantile(0.99), Some(42.0));
        assert_eq!(p.mean(), Some(42.0));
    }

    #[test]
    fn histogram_binning_and_cdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0); // underflow
        h.push(99.0); // overflow
        assert_eq!(h.count(), 12);
        assert!(h.bins().iter().all(|&c| c == 1));
        let cdf = h.cdf();
        // Last in-range point covers underflow + all 10 bins = 11/12.
        assert!((cdf[9] - 11.0 / 12.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "CDF not monotone");
    }

    #[test]
    fn histogram_quantile_reads_bin_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        // Median of 10 uniform points: right edge of the 5th bin.
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // Overflow-heavy histogram: quantile lands at the upper bound.
        let mut o = Histogram::new(0.0, 1.0, 4);
        o.push(0.5);
        o.push(50.0);
        assert_eq!(o.quantile(0.99), Some(1.0));
        // Empty histogram has no quantiles.
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn empirical_cdf_is_monotone() {
        let cdf = empirical_cdf(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.first().unwrap().0, 1.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn fraction_at_or_below_counts() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_at_or_below(&xs, 2.5), 0.5);
        assert_eq!(fraction_at_or_below(&xs, 0.0), 0.0);
        assert_eq!(fraction_at_or_below(&[], 1.0), 0.0);
    }
}
